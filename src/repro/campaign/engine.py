"""Resumable, sharded execution of campaign plans.

:class:`CampaignEngine` turns a :class:`~repro.campaign.spec.
CampaignSpec` into a :class:`~repro.campaign.results.ResultsTable`:

1. the plan is expanded (:func:`~repro.campaign.plan.expand`) and every
   point's run key computed;
2. keys already checkpointed under ``<out_dir>/runs/`` are loaded back
   instead of recomputed — an interrupted campaign resumes for free;
3. the remaining points are split round-robin into shards and fanned
   out across the experiment runner's process pool
   (:meth:`~repro.experiments.runner.ParallelRunner.map`), sharing the
   binary trace store so each catalog trace is materialised once and
   memory-mapped by every worker;
4. each worker checkpoints every completed point *as it finishes* (one
   atomic JSON per run key), so a kill mid-shard loses at most the
   points in flight;
5. rows are reassembled in plan order and aggregated column-wise; with
   an output directory set, ``results.npz``/``results.csv``/
   ``report.md`` are written alongside the checkpoints.

Actions — what actually runs at a grid point — are small functions over
the existing pipeline: they collect catalog traces through
:func:`~repro.workloads.materialize.collect_trace_cached`, build
OLD/NEW pairs through :func:`~repro.experiments.pairs.build_pair_for`,
reconstruct with :mod:`~repro.core.baselines` methods, and summarise
with :mod:`~repro.metrics`.  The figure sweeps in
:mod:`repro.experiments.figures` are these actions under fixed specs,
which is what keeps the campaign path bit-identical to the historical
per-figure loops.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, TextIO

import numpy as np

from ..core.baselines import (
    Acceleration,
    Dynamic,
    FixedThreshold,
    ReconstructionMethod,
    Revision,
    TraceTrackerMethod,
)
from ..inference.idle import extract_idle
from ..metrics.breakdown import average_idle_us, idle_breakdown
from ..metrics.comparison import intt_gap_stats
from ..perf import PerfRecorder
from ..workloads.catalog import get_spec
from ..workloads.generator import WorkloadSpec
from ..workloads.materialize import collect_trace_cached
from .plan import CampaignPlan, RunPoint, expand
from .results import ResultsTable
from .spec import CampaignSpec
from .supervise import (
    QUARANTINED,
    Resilience,
    SupervisedExecutor,
    run_point_resilient,
)

__all__ = [
    "CHECKPOINT_FORMATS",
    "SCHEDULERS",
    "CampaignEngine",
    "CampaignResult",
    "resolve_method",
    "run_campaign",
    "run_point",
]

#: Trace families whose OLD traces carry device stamps (Section V's
#: ":math:`T_{sdev}` known" group) — the ``device_times: auto`` rule.
_STAMPED_FAMILIES = ("MSPS", "MSRC")


def resolve_method(text: str) -> ReconstructionMethod:
    """Parse a campaign method string into a reconstruction method.

    ``tracetracker``, ``dynamic`` and ``revision`` take no argument;
    ``acceleration:<factor>`` and ``fixed-th:<threshold_us>`` carry
    their parameter after a colon (defaults: the paper's 100x and
    10 000 µs).
    """
    base, _, arg = text.strip().partition(":")
    base = base.strip().lower()
    if base == "tracetracker":
        return TraceTrackerMethod()
    if base == "dynamic":
        return Dynamic()
    if base == "revision":
        return Revision()
    if base == "acceleration":
        return Acceleration(float(arg) if arg else 100.0)
    if base in ("fixed-th", "fixed_threshold"):
        return FixedThreshold(float(arg) if arg else 10_000.0)
    raise ValueError(
        f"unknown method {text!r}; use tracetracker, dynamic, revision, "
        f"acceleration:<factor>, or fixed-th:<threshold_us>"
    )


def _device_times_auto(options: dict[str, Any], wspec: WorkloadSpec) -> bool:
    """Resolve the ``device_times`` option for a direct collection."""
    value = options.get("device_times", "auto")
    if value == "auto":
        return wspec.category in _STAMPED_FAMILIES
    return bool(value)


def _build_pair(spec: CampaignSpec, point: RunPoint):
    """OLD/NEW pair for a grid point (campaign devices, shared intents)."""
    # Imported lazily: ``repro.experiments`` imports the campaign
    # package at module level (the figure sweeps are campaign specs),
    # so the reverse import must happen at call time.
    from ..experiments.pairs import build_pair_for

    value = spec.options.get("device_times", "auto")
    old_has_device_times = None if value == "auto" else bool(value)
    return build_pair_for(
        point.workload,
        n_requests=point.n_requests,
        old_has_device_times=old_has_device_times,
        old_device=spec.source_device.build(),
        new_device=point.device.build(),
    )


# ----------------------------------------------------------------------
# Actions
# ----------------------------------------------------------------------


def _action_idle(spec: CampaignSpec, point: RunPoint) -> dict[str, Any]:
    """Collect the workload on the point's device and profile its idle.

    The Figure 16/17 computation: idle extraction on the OLD trace,
    average idle above ``min_idle_us``, and the Tslat/0-10ms/10-100ms/
    >100ms frequency and period buckets.
    """
    wspec = get_spec(point.workload).scaled(point.n_requests)
    old = collect_trace_cached(
        wspec,
        point.device.build(),
        record_device_times=_device_times_auto(spec.options, wspec),
    )
    extraction = extract_idle(old)
    min_idle_us = float(spec.options.get("min_idle_us", 0.0))
    breakdown = idle_breakdown(extraction, min_idle_us=min_idle_us)
    row: dict[str, Any] = {
        "category": wspec.category,
        "avg_idle_us": average_idle_us(extraction, min_idle_us=min_idle_us),
        "idle_frequency": breakdown.idle_frequency(),
        "idle_period": breakdown.idle_period(),
    }
    for bucket, value in breakdown.frequency.items():
        row[f"freq_{bucket}"] = value
    for bucket, value in breakdown.period.items():
        row[f"period_{bucket}"] = value
    return row


def _action_target_diff(spec: CampaignSpec, point: RunPoint) -> dict[str, Any]:
    """Reconstruct onto the point's device; gap stats vs the OLD trace.

    The Figure 14 computation: how far the reconstruction's
    inter-arrival times sit from the trace it was derived from.
    """
    pair = _build_pair(spec, point)
    method = resolve_method(point.method)
    reconstructed = method.reconstruct(pair.old, point.device.build())
    stats = intt_gap_stats(pair.old, reconstructed)
    return {
        "category": get_spec(point.workload).category,
        "method_name": method.name,
        "avg_diff_us": stats["mean_us"],
        "max_diff_us": stats["max_us"],
        "signed_avg_us": stats["mean_signed_us"],
    }


#: Memo of (OLD trace, reference reconstruction) per method_gap grid
#: column.  The method axis varies fastest in plan order, so without
#: this every method point would rebuild the pair and re-reconstruct
#: the reference the historical figure loop computed once per
#: workload.  Everything cached here is deterministic in its key, and
#: the memo is bounded: at most one entry per distinct (workload,
#: device, size) combination seen by this process.
_METHOD_GAP_MEMO: dict[str, tuple[Any, Any]] = {}
_METHOD_GAP_MEMO_CAP = 256


def _method_gap_context(spec: CampaignSpec, point: RunPoint, reference_name: str):
    """The shared (pair, reference trace) for a method_gap point."""
    memo_key = json.dumps(
        {
            "reference": reference_name,
            "workload": point.workload,
            "device": point.device.to_dict(),
            "source_device": spec.source_device.to_dict(),
            "n_requests": point.n_requests,
            "device_times": spec.options.get("device_times", "auto"),
        },
        sort_keys=True,
    )
    hit = _METHOD_GAP_MEMO.get(memo_key)
    if hit is not None:
        return hit
    pair = _build_pair(spec, point)
    ref_trace = resolve_method(reference_name).reconstruct(pair.old, point.device.build())
    if len(_METHOD_GAP_MEMO) >= _METHOD_GAP_MEMO_CAP:
        _METHOD_GAP_MEMO.clear()
    _METHOD_GAP_MEMO[memo_key] = (pair, ref_trace)
    return pair, ref_trace


def _action_method_gap(spec: CampaignSpec, point: RunPoint) -> dict[str, Any]:
    """Gap between the point's method and a reference reconstruction.

    The Figure 13 computation: both methods reconstruct the same OLD
    trace onto the same target; the row reports their inter-arrival
    distance.  The reference defaults to TraceTracker (option
    ``reference``) and is computed once per (workload, device, size)
    column, not once per method point.
    """
    reference = resolve_method(str(spec.options.get("reference", "tracetracker")))
    pair, ref_trace = _method_gap_context(spec, point, reference.name)
    method = resolve_method(point.method)
    rec_trace = method.reconstruct(pair.old, point.device.build())
    stats = intt_gap_stats(rec_trace, ref_trace)
    return {
        "category": get_spec(point.workload).category,
        "method_name": method.name,
        "reference": reference.name,
        "gap_mean_us": stats["mean_us"],
        "gap_max_us": stats["max_us"],
    }


def _action_reconstruct(spec: CampaignSpec, point: RunPoint) -> dict[str, Any]:
    """The general sweep action: collect on the source, remaster on the
    point's device, report span/speedup/inter-arrival summaries."""
    wspec = get_spec(point.workload).scaled(point.n_requests)
    old = collect_trace_cached(
        wspec,
        spec.source_device.build(),
        record_device_times=_device_times_auto(spec.options, wspec),
    )
    method = resolve_method(point.method)
    new = method.reconstruct(old, point.device.build())
    old_duration = float(old.duration)
    new_duration = float(new.duration)
    if new_duration > 0.0:
        speedup = old_duration / new_duration
    else:
        speedup = float("inf") if old_duration > 0.0 else 1.0
    return {
        "category": wspec.category,
        "method_name": method.name,
        "old_duration_us": old_duration,
        "new_duration_us": new_duration,
        "speedup": speedup,
        "median_intt_old_us": float(np.median(old.inter_arrival_times())),
        "median_intt_new_us": float(np.median(new.inter_arrival_times())),
    }


def _action_synthetic(spec: CampaignSpec, point: RunPoint) -> dict[str, Any]:
    """Deterministic spin action for scheduler benchmarks and tests.

    Burns CPU proportional to ``n_requests`` (``iters_per_request``
    option, default 50) and returns a value that depends only on the
    iteration count — no traces, no devices, no wall clock — so
    scheduling experiments can build grids with *known, skewed* point
    costs and still assert bitwise-equal results across schedulers,
    job counts, and resume boundaries.
    """
    iters = int(spec.options.get("iters_per_request", 50)) * point.n_requests
    acc = 0.0
    for i in range(iters):
        acc += (i % 7) * 1e-3
    return {"category": "SYNTH", "iters": iters, "value": acc}


_ACTIONS: dict[str, Callable[[CampaignSpec, RunPoint], dict[str, Any]]] = {
    "reconstruct": _action_reconstruct,
    "idle": _action_idle,
    "target_diff": _action_target_diff,
    "method_gap": _action_method_gap,
    "synthetic": _action_synthetic,
}


def run_point(spec: CampaignSpec, point: RunPoint) -> dict[str, Any]:
    """Execute one grid point; returns its flat, JSON-able result row."""
    row = dict(point.axis_values())
    row.update(_ACTIONS[spec.action](spec, point))
    return row


# ----------------------------------------------------------------------
# Checkpointing
# ----------------------------------------------------------------------
#
# Two formats share the ``<out_dir>/runs/`` directory:
#
# - **segments** (default) — each shard worker appends completed points
#   to its own ``segment-<pid>-<n>.jsonl`` file, one self-contained JSON
#   line per point, flushed per line.  One open file per shard instead
#   of a write+rename pair per point, which is what makes large grids'
#   checkpoint overhead flat.  Crash-safe by construction: a kill can
#   only tear the final line, and the resume scan skips any line that
#   does not parse.  Append-only — a resumed campaign opens a fresh
#   segment and never rewrites an old one.
# - **json** — the original one-atomic-file-per-point format
#   (``<key>.json``, write-then-rename), kept as the documented
#   fallback for tooling that wants to inspect or delete single points.
#
# The resume scan reads both, from a single directory listing.

#: Valid values of ``CampaignEngine(checkpoint_format=...)``.
CHECKPOINT_FORMATS = ("segments", "json")

#: Valid values of ``CampaignEngine(scheduler=...)``.  ``"supervised"``
#: is the stealing chunk queue run under worker supervision
#: (:class:`~repro.campaign.supervise.SupervisedExecutor`): heartbeats,
#: dead/hung-worker detection, lease reclaim, and respawn.
SCHEDULERS = ("stealing", "static", "supervised")

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".jsonl"


def _checkpoint_path(out_dir: Path, key: str) -> Path:
    return out_dir / "runs" / f"{key}.json"


class _SegmentWriter:
    """Append-only checkpoint segment for one shard.

    The file is created lazily on the first append, with an
    ``O_EXCL`` claim on the first free ``segment-<pid>-<n>.jsonl``
    name, so concurrent shard workers (distinct pids) and sequential
    resumed runs (same pid, bumped ``<n>``) never share a segment.
    Every appended line is flushed immediately: after a kill the file
    holds every completed point, at worst plus one torn final line the
    resume scan discards.
    """

    def __init__(self, out_dir: Path) -> None:
        self._dir = out_dir / "runs"
        self._handle: TextIO | None = None
        self.path: Path | None = None

    def _open(self) -> TextIO:
        self._dir.mkdir(parents=True, exist_ok=True)
        n = 0
        while True:
            path = self._dir / f"{_SEGMENT_PREFIX}{os.getpid()}-{n}{_SEGMENT_SUFFIX}"
            try:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            except FileExistsError:
                n += 1
                continue
            self.path = path
            return os.fdopen(fd, "w", encoding="utf-8")

    def append(self, key: str, row: dict[str, Any], wall_s: float | None = None) -> None:
        """Record one completed run key (one flushed JSON line).

        ``wall_s`` — the point's measured compute time — rides along in
        the line when given, so the result lake's rescan can rebuild
        wall-time columns from the flat files alone.  Scanners ignore
        unknown fields, so old and new lines mix freely in a directory.
        """
        if self._handle is None:
            self._handle = self._open()
        payload: dict[str, Any] = {"key": key, "row": row}
        if wall_s is not None:
            payload["wall_s"] = wall_s
        self._handle.write(json.dumps(payload) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Close the segment (a no-op when nothing was appended)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def _degraded_note(out_dir: Path | None, message: str) -> None:
    """Append one line to the campaign's degradation log (best-effort).

    ``degraded.log`` is the visible trail of everything the engine
    survived instead of raising — lake write failures, quarantined
    corrupt checkpoint files — and :class:`CampaignEngine` reports its
    line count as :attr:`CampaignResult.n_degraded`.  A failure to log
    must itself never fail the campaign.
    """
    if out_dir is None:
        return
    try:
        out_dir.mkdir(parents=True, exist_ok=True)
        with open(out_dir / "degraded.log", "a", encoding="utf-8") as handle:
            handle.write(message.rstrip("\n") + "\n")
    except OSError:
        pass


def _quarantine_file(path: Path, out_dir: Path | None = None, reason: str = "") -> bool:
    """Rename a corrupt artifact to ``<name>.bad`` (best-effort).

    The sidecar name keeps the bytes around for a post-mortem while
    taking the file out of every scan pattern (``.json``, ``.jsonl``,
    ``.npz``), so the next resume or rebuild recomputes instead of
    raising.  Returns whether the rename happened (a read-only tree —
    e.g. a lake rescan over an archive — degrades to skip-in-place).
    """
    target = path.with_name(path.name + ".bad")
    try:
        os.replace(path, target)
    except OSError:
        return False
    _degraded_note(
        out_dir, f"quarantined corrupt checkpoint {path.name} -> {target.name}: {reason}"
    )
    return True


def _valid_row(data: Any, key: str | None = None) -> dict[str, Any] | None:
    """The checkpoint payload's row, or ``None`` when malformed."""
    if not isinstance(data, dict) or "row" not in data:
        return None
    if key is not None and data.get("key") != key:
        return None
    row = data["row"]
    return row if isinstance(row, dict) and isinstance(data.get("key"), str) else None


def _wall_s_of(data: Any) -> float | None:
    """The checkpoint payload's wall-time stamp, when present and sane."""
    value = data.get("wall_s") if isinstance(data, dict) else None
    return float(value) if isinstance(value, (int, float)) else None


def _scan_checkpoints_meta(
    out_dir: Path, keys: list[str]
) -> dict[str, tuple[dict[str, Any], float | None, str]]:
    """Checkpointed ``(row, wall_s, filename)`` per key, one dir scan.

    Reads every segment file and exactly the per-point JSON files whose
    key appears in the listing — a resumed campaign no longer stats
    ``runs/<key>.json`` once per grid point.  Torn or malformed segment
    lines (a crash mid-append) and corrupt JSON files are skipped, so
    those points simply recompute.

    When a key appears more than once (e.g. a ``--no-resume`` rerun
    after a code change appended fresh lines, or rewrote the key's
    JSON file), the row from the newest file wins — file mtime, with
    later lines beating earlier ones inside a segment and filename as
    the cross-file tiebreak — matching the overwrite semantics the
    JSON-per-point format always had.

    The metadata — the wall-time stamp a new-format line carries
    (``None`` for old lines) and the checkpoint file's name — is what
    the result lake's rescan ingests; the engine's own resume path
    reads just the rows through :func:`_scan_checkpoints`.
    """
    runs_dir = out_dir / "runs"
    try:
        with os.scandir(runs_dir) as it:
            entries = {e.name: e.stat().st_mtime_ns for e in it if e.is_file()}
    except OSError:
        return {}
    wanted = set(keys)
    best: dict[str, tuple[int, dict[str, Any], float | None, str]] = {}
    segments = sorted(
        (
            name
            for name in entries
            if name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)
        ),
        key=lambda name: (entries[name], name),
    )
    for name in segments:
        try:
            text = (runs_dir / name).read_text(encoding="utf-8")
        except UnicodeDecodeError:
            # Not even text: bad disk or foreign bytes.  Quarantine the
            # whole file; its points recompute.
            _quarantine_file(runs_dir / name, out_dir, "undecodable bytes")
            continue
        except OSError:
            continue
        mtime = entries[name]
        parsed_any = False
        for line in text.splitlines():
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn final line of a killed shard
            parsed_any = True
            row = _valid_row(data)
            if row is None or data["key"] not in wanted:
                continue
            previous = best.get(data["key"])
            if previous is None or mtime >= previous[0]:
                best[data["key"]] = (mtime, row, _wall_s_of(data), name)
        if text.strip() and not parsed_any:
            # Not one line decodes: the segment is corrupt from byte 0
            # (bad disk, torn single-row file), not merely torn at the
            # tail.  Quarantine it so its points recompute.
            _quarantine_file(runs_dir / name, out_dir, "no decodable segment lines")
    for key in keys:
        name = f"{key}.json"
        mtime = entries.get(name)
        if mtime is None:
            continue
        previous = best.get(key)
        if previous is not None and previous[0] > mtime:
            continue
        path = _checkpoint_path(out_dir, key)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            # Corrupt or truncated per-point checkpoint: quarantine to
            # ``<key>.json.bad`` and leave the key un-resumed, so the
            # point re-queues instead of the resume raising (or the
            # corruption silently shadowing an older good row).
            _quarantine_file(path, out_dir, f"undecodable JSON ({exc})")
            continue
        except OSError:
            continue
        row = _valid_row(data, key)
        if row is None:
            _quarantine_file(path, out_dir, "malformed checkpoint payload")
            continue
        best[key] = (mtime, row, _wall_s_of(data), name)
    return {key: (row, wall_s, name) for key, (_, row, wall_s, name) in best.items()}


def _scan_checkpoints(out_dir: Path, keys: list[str]) -> dict[str, dict[str, Any]]:
    """All checkpointed rows for ``keys`` (see :func:`_scan_checkpoints_meta`)."""
    return {key: row for key, (row, _, _) in _scan_checkpoints_meta(out_dir, keys).items()}


def _write_checkpoint(
    out_dir: Path, key: str, row: dict[str, Any], wall_s: float | None = None
) -> None:
    """Atomically record one completed run key.

    Write-then-rename keeps readers (a resuming campaign, a concurrent
    ``repro-campaign report``) from ever seeing a torn file; the PID in
    the temp name keeps parallel shard workers from clobbering each
    other's in-flight writes.  ``wall_s`` rides along like the segment
    format's (:meth:`_SegmentWriter.append`).
    """
    path = _checkpoint_path(out_dir, key)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".{os.getpid()}.tmp")
    payload: dict[str, Any] = {"key": key, "row": row}
    if wall_s is not None:
        payload["wall_s"] = wall_s
    tmp.write_text(json.dumps(payload), encoding="utf-8")
    os.replace(tmp, path)


def _load_checkpoint(out_dir: Path, key: str) -> dict[str, Any] | None:
    """A previously checkpointed row, or ``None`` (missing/corrupt)."""
    path = _checkpoint_path(out_dir, key)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    return _valid_row(data, key)


#: Per-worker cache of open lake catalogs, keyed by database path.  A
#: worker records every point it completes into one connection; the
#: catalog runs WAL mode with a busy timeout, so concurrent workers
#: (and concurrent campaigns) interleave their upserts safely.
_WORKER_LAKES: dict[str, Any] = {}


def _worker_lake(lake_text: str | None):
    """This worker's open lake catalog, or ``None`` when no lake is set."""
    if lake_text is None:
        return None
    lake = _WORKER_LAKES.get(lake_text)
    if lake is None:
        from ..lake.catalog import LakeCatalog

        lake = _WORKER_LAKES.setdefault(lake_text, LakeCatalog(lake_text))
    return lake


def _record_into_lake(
    lake: Any,
    spec: CampaignSpec,
    key: str,
    row: dict[str, Any],
    wall_s: float | None,
    out_dir: Path | None,
    checkpoint_file: str | None,
) -> None:
    """Best-effort lake recording of one completed point.

    A full disk, a locked database that outlasts the catalog's own
    bounded retry, or a read-only catalog must never fail the campaign
    that computed the point — the checkpoint on disk already has it,
    and the next ``repro-lake ingest`` will pick it up.  Every swallow
    leaves a line in ``degraded.log`` so the fallback is visible, not
    silent.
    """
    import sqlite3

    from ..lake.ingest import record_campaign_point

    try:
        record_campaign_point(
            lake,
            spec,
            key,
            row,
            wall_s=wall_s,
            source_dir=out_dir,
            checkpoint_file=checkpoint_file,
        )
    except (sqlite3.Error, OSError) as exc:
        _degraded_note(
            out_dir,
            f"lake record failed for {key} ({type(exc).__name__}: {exc}); "
            f"flat-file checkpoint retained",
        )


def _unpack_context(
    context: tuple[Any, ...],
) -> tuple[dict[str, Any], str | None, str, str | None, Resilience | None]:
    """``(spec dict, out dir, checkpoint format, lake path, resilience)``
    from a worker context tuple; the lake and resilience slots are
    optional for callers built before those layers existed."""
    spec_dict, out_dir_text, checkpoint_format, *rest = context
    lake_text = rest[0] if rest else None
    resilience_dict = rest[1] if len(rest) > 1 else None
    resilience = (
        Resilience.from_dict(resilience_dict) if resilience_dict is not None else None
    )
    return spec_dict, out_dir_text, checkpoint_format, lake_text, resilience


def _execute_point(
    spec: CampaignSpec,
    plan: CampaignPlan,
    index: int,
    key: str,
    resilience: Resilience | None,
    injector: Any,
) -> tuple[dict[str, Any], float, bool]:
    """Run one grid point under the worker's fault policy.

    Returns ``(row, wall_s, quarantined)``.  With no resilience
    configured this is the historical behaviour — the point's exception
    propagates and kills the shard.  With one, transient failures retry
    with backoff and exhausted/permanent failures come back as
    quarantine rows (see :func:`~repro.campaign.supervise.
    run_point_resilient`).  ``run_point`` is resolved through the
    module at call time so test instrumentation (and hot patching) of
    ``engine.run_point`` is honoured.
    """
    start = time.perf_counter()
    if resilience is None:
        row, quarantined = run_point(spec, plan.points[index]), False
    else:
        row, quarantined = run_point_resilient(
            run_point, spec, plan.points[index], index, key, resilience, injector
        )
    return row, round(time.perf_counter() - start, 6), quarantined


def _run_shard(
    context: tuple[Any, ...],
    items: list[tuple[int, str]],
) -> list[tuple[str, dict[str, Any]]]:
    """Worker entry point: run one shard of (point index, run key) pairs.

    Module-level (picklable) and self-contained: the campaign context
    ``(spec dict, output dir, checkpoint format, lake path)`` arrives
    once per worker through :meth:`~repro.experiments.runner.
    ParallelRunner.map`'s initializer — not re-pickled per shard — and
    the plan is re-expanded locally (expansion is deterministic, so
    indices agree with the parent's plan).  Each completed point is
    checkpointed immediately — appended to this shard's segment file,
    or written as its own atomic JSON under the fallback format — and,
    when a lake is configured, recorded into the catalog with its
    measured wall time.
    """
    spec_dict, out_dir_text, checkpoint_format, lake_text, resilience = _unpack_context(context)
    spec = CampaignSpec.from_dict(spec_dict)
    plan = expand(spec)
    out_dir = Path(out_dir_text) if out_dir_text else None
    lake = _worker_lake(lake_text)
    injector = resilience.injector() if resilience is not None else None
    segment = _SegmentWriter(out_dir) if (
        out_dir is not None and checkpoint_format == "segments"
    ) else None
    results: list[tuple[str, dict[str, Any]]] = []
    try:
        for index, key in items:
            row, wall_s, quarantined = _execute_point(
                spec, plan, index, key, resilience, injector
            )
            checkpoint_file: str | None = None
            checkpoint_path: Path | None = None
            if segment is not None:
                segment.append(key, row, wall_s=wall_s)
                checkpoint_path = segment.path
                checkpoint_file = segment.path.name if segment.path else None
            elif out_dir is not None:
                _write_checkpoint(out_dir, key, row, wall_s=wall_s)
                checkpoint_path = _checkpoint_path(out_dir, key)
                checkpoint_file = f"{key}.json"
            if injector is not None:
                injector.after_checkpoint(index, checkpoint_path)
            if lake is not None and not quarantined:
                _record_into_lake(lake, spec, key, row, wall_s, out_dir, checkpoint_file)
            results.append((key, row))
    finally:
        if segment is not None:
            segment.close()
    return results


#: Worker-process caches for the stealing scheduler, keyed by the
#: campaign context.  A worker runs many chunks of one campaign, so the
#: expanded plan is computed once per worker (not once per chunk) and
#: all of a worker's chunks append to *one* segment file — the same
#: one-segment-per-worker layout the static shard path produces.
#: Bounded by construction: a worker process serves one engine run at a
#: time, and both caches are keyed by that run's context.
_CHUNK_PLANS: dict[str, tuple[CampaignSpec, CampaignPlan]] = {}
_CHUNK_SEGMENTS: dict[tuple[str, str], _SegmentWriter] = {}


def _run_chunk(
    context: tuple[Any, ...],
    items: list[tuple[int, str]],
) -> list[tuple[str, dict[str, Any]]]:
    """Worker entry point for the stealing scheduler: run one chunk.

    Same contract as :func:`_run_shard` — (point index, run key) pairs
    in, checkpointed ``(key, row)`` pairs out — but built to be called
    many times per worker: the spec expansion, the segment writer, and
    the lake connection live in module-global per-worker caches, so a
    hundred chunks cost one plan expansion and open one segment file.
    Cached segments are never explicitly closed; every append is
    flushed, so the handle is crash-equivalent to the shard path's and
    the checkpoint is complete the moment the line hits the file.
    """
    spec_dict, out_dir_text, checkpoint_format, lake_text, resilience = _unpack_context(context)
    spec_key = json.dumps(spec_dict, sort_keys=True)
    cached = _CHUNK_PLANS.get(spec_key)
    if cached is None:
        spec = CampaignSpec.from_dict(spec_dict)
        cached = (spec, expand(spec))
        _CHUNK_PLANS.clear()
        _CHUNK_PLANS[spec_key] = cached
    spec, plan = cached
    out_dir = Path(out_dir_text) if out_dir_text else None
    lake = _worker_lake(lake_text)
    injector = resilience.injector() if resilience is not None else None
    segment = None
    if out_dir is not None and checkpoint_format == "segments":
        seg_key = (str(out_dir), checkpoint_format)
        segment = _CHUNK_SEGMENTS.get(seg_key)
        if segment is None:
            segment = _CHUNK_SEGMENTS.setdefault(seg_key, _SegmentWriter(out_dir))
    results: list[tuple[str, dict[str, Any]]] = []
    for index, key in items:
        row, wall_s, quarantined = _execute_point(
            spec, plan, index, key, resilience, injector
        )
        checkpoint_file: str | None = None
        checkpoint_path: Path | None = None
        if segment is not None:
            segment.append(key, row, wall_s=wall_s)
            checkpoint_path = segment.path
            checkpoint_file = segment.path.name if segment.path else None
        elif out_dir is not None:
            _write_checkpoint(out_dir, key, row, wall_s=wall_s)
            checkpoint_path = _checkpoint_path(out_dir, key)
            checkpoint_file = f"{key}.json"
        if injector is not None:
            injector.after_checkpoint(index, checkpoint_path)
        if lake is not None and not quarantined:
            _record_into_lake(lake, spec, key, row, wall_s, out_dir, checkpoint_file)
        results.append((key, row))
    return results


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignResult:
    """What one engine run produced (and how much of it was reused).

    ``n_resumed`` counts points loaded back from this directory's own
    checkpoints; ``n_lake_hits`` counts points skipped because *some
    prior campaign* — any directory, any machine sharing the catalog —
    already recorded their run keys in the result lake.
    ``n_quarantined`` counts rows carrying ``status: "quarantined"``
    (points that exhausted their retry budget); ``n_degraded`` counts
    the ``degraded.log`` lines — failures the run absorbed (lake
    fallbacks, quarantined corrupt checkpoint files) instead of
    raising.  ``supervision`` holds the supervised scheduler's
    dead/hung/respawned/reclaimed counters (``None`` off that path).
    """

    table: ResultsTable
    plan: CampaignPlan
    n_computed: int
    n_resumed: int
    out_dir: Path | None
    n_lake_hits: int = 0
    n_quarantined: int = 0
    n_degraded: int = 0
    supervision: dict[str, int] | None = None


class CampaignEngine:
    """Plans, shards, checkpoints, and aggregates one campaign.

    Parameters
    ----------
    spec:
        The campaign to run.
    out_dir:
        Output/checkpoint directory.  ``None`` (the in-process mode the
        figure sweeps use) computes everything in memory with no disk
        traffic.
    jobs:
        Worker processes; shards run across the experiment runner's
        process pool when > 1.
    use_trace_store / trace_store_dir:
        Materialise catalog traces once into the binary trace store and
        memory-map them from every worker (same semantics as
        ``repro-report``).
    resume:
        Load checkpointed run keys instead of recomputing them
        (default).  ``False`` ignores — but does not delete — existing
        checkpoints (and skips the lake lookup).
    lake:
        Optional result-lake catalog database
        (:class:`~repro.lake.catalog.LakeCatalog` path).  With a lake,
        pending points whose run keys any prior campaign recorded are
        loaded from the catalog instead of recomputed
        (``n_lake_hits``), and every point this run computes is
        recorded back — campaigns become incremental across runs and
        directories, not just resumable within one.
    checkpoint_format:
        ``"segments"`` (default) appends completed points to per-shard
        ``segment-*.jsonl`` files — one open file per shard, flat
        overhead on large grids; ``"json"`` writes the original one
        atomic ``<key>.json`` per point.  Resume reads both, so the
        formats mix freely across runs of one campaign.
    scheduler:
        ``"stealing"`` (default) queues the pending points as small
        contiguous chunks that idle workers pull dynamically — a slow
        point delays only its own chunk, so skewed grids finish at the
        speed of the work, not of the unluckiest shard.  ``"static"``
        is the original round-robin pre-assignment of one shard per
        worker.  ``"supervised"`` is the stealing queue run under
        worker supervision: every worker beats a heartbeat file at
        each point boundary, and a supervisor loop in the parent
        SIGKILLs hung workers, reclaims dead workers' leased chunks
        (salvaging their checkpointed points), and respawns
        replacements up to ``respawn_budget`` — and it always runs
        workers out-of-process, even with ``jobs=1``, so a worker
        death never takes the campaign down.  All three produce
        identical rows and identical per-point checkpoints (resume is
        scheduler-agnostic: run keys do not know how points were
        dispatched); with ``jobs=1`` the first two run inline as a
        single shard.
    resilience:
        Optional :class:`~repro.campaign.supervise.Resilience` — the
        per-point fault policy (retry/backoff on transient failures,
        wall-clock point timeouts, poison-point quarantine, chaos
        injection).  ``None`` (default) keeps the historical contract:
        a grid point's exception propagates and fails the run.
    hang_timeout_s / respawn_budget:
        Supervised-scheduler knobs: the heartbeat staleness that
        declares a worker hung (must exceed the slowest legitimate
        point), and the total replacement workers the run may spawn
        (default ``2 * jobs``).
    perf:
        Optional :class:`~repro.perf.PerfRecorder`; when given, the
        engine times its ``plan``/``resume_scan``/``compute``/
        ``aggregate`` phases into it.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        out_dir: str | Path | None = None,
        jobs: int = 1,
        use_trace_store: bool = False,
        trace_store_dir: str | Path | None = None,
        resume: bool = True,
        checkpoint_format: str = "segments",
        scheduler: str = "stealing",
        lake: "str | Path | None" = None,
        perf: "PerfRecorder | None" = None,
        resilience: "Resilience | None" = None,
        hang_timeout_s: float = 30.0,
        respawn_budget: int | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if checkpoint_format not in CHECKPOINT_FORMATS:
            raise ValueError(
                f"unknown checkpoint format {checkpoint_format!r}; use one of {CHECKPOINT_FORMATS}"
            )
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; use one of {SCHEDULERS}"
            )
        self.spec = spec
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.jobs = jobs
        self.use_trace_store = use_trace_store
        self.trace_store_dir = trace_store_dir
        self.resume = resume
        self.checkpoint_format = checkpoint_format
        self.scheduler = scheduler
        self.lake = Path(lake) if lake is not None else None
        self.perf = perf if perf is not None else PerfRecorder(enabled=False)
        if (
            resilience is not None
            and resilience.chaos is not None
            and resilience.chaos.injections
        ):
            if self.out_dir is None:
                raise ValueError(
                    "chaos injection needs an out_dir (fire-once markers live there)"
                )
            if resilience.chaos_dir is None:
                from dataclasses import replace

                resilience = replace(
                    resilience, chaos_dir=str(self.out_dir / ".chaos")
                )
        self.resilience = resilience
        if hang_timeout_s <= 0:
            raise ValueError("hang_timeout_s must be positive")
        self.hang_timeout_s = hang_timeout_s
        self.respawn_budget = respawn_budget

    def run(self, log: TextIO | None = None) -> CampaignResult:
        """Execute the campaign; returns the aggregated results.

        Raises whatever a grid point raises — by then every point that
        finished before the failure is already checkpointed, so rerun
        to resume.
        """
        from ..experiments.runner import ParallelRunner

        with self.perf.stage("plan"):
            plan = expand(self.spec)
            keys = plan.keys()
        completed: dict[str, dict[str, Any]] = {}
        if self.out_dir is not None and self.resume:
            with self.perf.stage("resume_scan"):
                completed = _scan_checkpoints(self.out_dir, keys)
        pending = [i for i, key in enumerate(keys) if key not in completed]
        n_resumed = len(plan) - len(pending)
        n_lake_hits = 0
        if pending and self.lake is not None and self.resume:
            # Cross-campaign skip: run keys some prior campaign already
            # recorded load straight from the catalog — the lake's
            # whole point.  Run keys cover everything that determines a
            # row (plan.run_key), so a hit is exact, not heuristic.
            with self.perf.stage("lake_scan"):
                from ..lake.catalog import LakeCatalog

                with LakeCatalog(self.lake) as lake:
                    hits = lake.completed_rows([keys[i] for i in pending])
            completed.update(hits)
            pending = [i for i in pending if keys[i] not in completed]
            n_lake_hits = len(hits)
        if log is not None:
            lake_note = f", {n_lake_hits} from lake" if self.lake is not None else ""
            log.write(
                f"[campaign] {self.spec.name}: {len(plan)} point(s), "
                f"{n_resumed} checkpointed{lake_note}, {len(pending)} to compute "
                f"(jobs={self.jobs}, scheduler={self.scheduler})\n"
            )
        if self.out_dir is not None:
            # Even a zero-compute run (everything resumed or lake-hit)
            # writes outputs below, so the directory must exist and be
            # self-describing: spec.json is what `repro-campaign
            # report` and `repro-lake ingest` recognise a campaign by.
            self.out_dir.mkdir(parents=True, exist_ok=True)
            self._write_spec_once()
        supervision: dict[str, int] | None = None
        if pending:
            out_dir_text = str(self.out_dir) if self.out_dir is not None else None
            lake_text = str(self.lake) if self.lake is not None else None
            # The spec dict ships once per worker (map's context
            # initializer), not once per shard task.
            resilience_dict = (
                self.resilience.to_dict() if self.resilience is not None else None
            )
            context = (
                self.spec.to_dict(),
                out_dir_text,
                self.checkpoint_format,
                lake_text,
                resilience_dict,
            )
            if self.scheduler == "supervised":
                start = time.perf_counter()
                with self.perf.stage("compute"):
                    supervision = self._run_supervised(plan, keys, pending, context, completed)
                for name, value in supervision.items():
                    self.perf.count(f"supervise_{name}", value)
                if log is not None:
                    log.write(
                        f"[campaign] computed {len(pending)} point(s) in "
                        f"{time.perf_counter() - start:.1f}s "
                        f"(dead={supervision['dead']}, hung={supervision['hung']}, "
                        f"respawned={supervision['respawned']})\n"
                    )
            elif self.scheduler == "stealing" and self.jobs > 1:
                # Many small contiguous chunks on the pool's task
                # queue; idle workers pull the next chunk as they
                # finish.  ~4 chunks per worker bounds the tail (the
                # last chunk to start is at most 1/(4*jobs) of the
                # grid) while the cap of 32 keeps the per-chunk
                # dispatch overhead invisible on huge grids.
                chunk = max(1, min(32, -(-len(pending) // (self.jobs * 4))))
                parts = plan.chunks(chunk, indices=pending)
                worker = _run_chunk
            else:
                n_shards = min(len(pending), self.jobs) if self.jobs > 1 else 1
                parts = plan.shards(n_shards, indices=pending)
                worker = _run_shard
            if self.scheduler != "supervised":
                tasks = [[(i, keys[i]) for i in part] for part in parts]
                runner = ParallelRunner(
                    jobs=self.jobs,
                    use_cache=False,
                    use_trace_store=self.use_trace_store,
                    trace_store_dir=self.trace_store_dir,
                )
                start = time.perf_counter()
                with self.perf.stage("compute"):
                    for part_results in runner.map(worker, tasks, context=context):
                        completed.update(part_results)
                if log is not None:
                    log.write(
                        f"[campaign] computed {len(pending)} point(s) in "
                        f"{time.perf_counter() - start:.1f}s\n"
                    )
        with self.perf.stage("aggregate"):
            table = ResultsTable.from_rows([completed[key] for key in keys])
            if self.out_dir is not None:
                self._write_outputs(table, n_resumed=n_resumed, n_computed=len(pending))
                self._record_results_artifacts()
        n_quarantined = sum(
            1 for key in keys if completed[key].get("status") == QUARANTINED
        )
        n_degraded = self._count_degraded()
        if log is not None and (n_quarantined or n_degraded):
            log.write(
                f"[campaign] degraded finish: {n_quarantined} quarantined point(s), "
                f"{n_degraded} degradation event(s) — see "
                f"{'degraded.log in ' + str(self.out_dir) if self.out_dir else 'log'}\n"
            )
        return CampaignResult(
            table=table,
            plan=plan,
            n_computed=len(pending),
            n_resumed=n_resumed,
            out_dir=self.out_dir,
            n_lake_hits=n_lake_hits,
            n_quarantined=n_quarantined,
            n_degraded=n_degraded,
            supervision=supervision,
        )

    def _run_supervised(
        self,
        plan: CampaignPlan,
        keys: list[str],
        pending: list[int],
        context: tuple[Any, ...],
        completed: dict[str, dict[str, Any]],
    ) -> dict[str, int]:
        """Execute the pending points under the supervised executor.

        Chunking matches the stealing scheduler (so scheduler choice
        never changes results, only failure behaviour); workers are
        always real processes — even at ``jobs=1`` — so an injected or
        organic worker death never takes the parent down with it.
        Returns the executor's supervision counters.
        """
        import functools
        import tempfile

        from ..experiments.runner import _worker_init_trace_store

        chunk = max(1, min(32, -(-len(pending) // (self.jobs * 4))))
        parts = plan.chunks(chunk, indices=pending)
        tasks = [[(i, keys[i]) for i in part] for part in parts]
        if self.out_dir is not None:
            hearts_dir = self.out_dir / ".supervise"
        else:
            hearts_dir = Path(tempfile.mkdtemp(prefix="repro-supervise-"))
        initializer = None
        if self.use_trace_store:
            store_dir = (
                Path(self.trace_store_dir)
                if self.trace_store_dir is not None
                else None
            )
            if store_dir is None:
                from ..trace.io.cache import default_trace_store_dir

                store_dir = default_trace_store_dir()
            initializer = functools.partial(_worker_init_trace_store, str(store_dir))
        executor = SupervisedExecutor(
            jobs=self.jobs,
            worker_fn=_run_chunk,
            context=context,
            hearts_dir=hearts_dir,
            hang_timeout_s=self.hang_timeout_s,
            respawn_budget=self.respawn_budget,
            reclaim=self._reclaim_chunk,
            initializer=initializer,
        )
        for payload in executor.run(tasks):
            completed.update(payload)
        return dict(executor.stats)

    def _reclaim_chunk(
        self, items: list[tuple[int, str]]
    ) -> tuple[list[tuple[str, dict[str, Any]]], list[tuple[int, str]]]:
        """Salvage a reclaimed lease: checkpointed points stay done.

        A dead worker checkpointed every point it finished before dying
        (both checkpoint formats flush per point), so a rescan of this
        chunk's run keys recovers them without recomputation — the
        acceptance bar for supervisor recovery.  Whatever the scan does
        not find is re-queued.
        """
        if self.out_dir is None:
            return [], list(items)
        found = _scan_checkpoints(self.out_dir, [key for _, key in items])
        salvaged = [(key, found[key]) for _, key in items if key in found]
        remaining = [(i, key) for i, key in items if key not in found]
        return salvaged, remaining

    def _count_degraded(self) -> int:
        """How many degradation events this directory has absorbed.

        The count is the ``degraded.log`` line count — one line per
        swallowed failure (lake fallback, quarantined corrupt artifact)
        — so it accumulates across resumes of the same directory, which
        is the honest reading: the directory's history degraded, even
        if this particular run did not.
        """
        if self.out_dir is None:
            return 0
        try:
            with open(self.out_dir / "degraded.log", "r", encoding="utf-8") as handle:
                return sum(1 for _ in handle)
        except OSError:
            return 0

    def _write_spec_once(self) -> None:
        """Record the spec next to the checkpoints, skipping no-op rewrites.

        Every resume used to rewrite ``spec.json`` even when nothing
        changed; now the existing bytes are compared first, so resuming
        an unchanged campaign touches the file zero times (and the
        mtime stays meaningful for "when did this grid last change").
        """
        assert self.out_dir is not None
        path = self.out_dir / "spec.json"
        text = json.dumps(self.spec.to_dict(), indent=2, sort_keys=True) + "\n"
        try:
            if path.read_text(encoding="utf-8") == text:
                return
        except OSError:
            pass
        path.write_text(text, encoding="utf-8")

    def _write_outputs(self, table: ResultsTable, n_resumed: int, n_computed: int) -> None:
        """Persist the aggregate next to the checkpoints."""
        from ..experiments.reporting import ab_campaign_report, campaign_report

        assert self.out_dir is not None
        table.save_npz(self.out_dir / "results.npz")
        table.to_csv(self.out_dir / "results.csv")
        report = campaign_report(
            self.spec, table, n_resumed=n_resumed, n_computed=n_computed
        )
        if self.spec.options.get("ab"):
            report = report + "\n" + ab_campaign_report(self.spec, table)
        (self.out_dir / "report.md").write_text(report, encoding="utf-8")

    def _record_results_artifacts(self) -> None:
        """Best-effort catalog registration of the aggregate tables.

        Mirrors what ``repro-lake ingest`` records for a campaign
        directory's ``results.npz``/``results.csv``, so a live-recorded
        catalog and a rescan of the same tree hold identical artifact
        rows.  No lake configured, or a write failure, is a no-op.
        """
        if self.lake is None or self.out_dir is None:
            return
        import sqlite3

        from ..lake.catalog import LakeCatalog

        try:
            with LakeCatalog(self.lake) as lake:
                for name in ("results.npz", "results.csv"):
                    path = self.out_dir / name
                    if path.exists():
                        lake.record_artifact(
                            "results",
                            path,
                            ref=f"campaign:{self.spec.name}",
                            meta={"campaign": self.spec.name},
                        )
        except (sqlite3.Error, OSError):
            pass


def run_campaign(
    spec: CampaignSpec,
    out_dir: str | Path | None = None,
    jobs: int = 1,
    log: TextIO | None = None,
) -> ResultsTable:
    """One-call campaign execution; returns just the results table.

    The figure sweeps call this with the defaults (in-process, silent);
    the CLI builds a :class:`CampaignEngine` directly for the full
    checkpoint/report treatment.
    """
    return CampaignEngine(spec, out_dir=out_dir, jobs=jobs).run(log=log).table
