"""Human-readable rendering of inference outcomes.

A reconstruction pipeline that silently produces coefficients is hard
to trust; :func:`explain_report` turns an
:class:`~repro.inference.decompose.InferenceReport` into the short
prose+table summary a study would paste into a lab notebook, and
:func:`model_sanity` flags estimates that look physically implausible
before they silently skew a reconstruction.
"""

from __future__ import annotations

from .decompose import InferenceReport, OpDecomposition
from .model import LatencyModel

__all__ = ["explain_report", "model_sanity"]


def _describe_op(dec: OpDecomposition | None, label: str) -> list[str]:
    if dec is None:
        return [f"{label}: no usable request groups (coefficients borrowed)"]
    lines = [
        f"{label}: steepest groups at sizes {dec.size_steep1} and {dec.size_steep2} sectors"
        f" (representatives {dec.t_rep_steep1_us:.1f} / {dec.t_rep_steep2_us:.1f} us)",
        f"{label}: slope {dec.slope_us_per_sector:.3f} us/sector,"
        f" channel delay {dec.tcdel_us:.1f} us",
    ]
    if dec.used_fallback:
        lines.append(f"{label}: estimated via fallback path (see report notes)")
    return lines


def explain_report(report: InferenceReport) -> str:
    """Render an inference report as readable text."""
    model = report.model
    lines = [
        "Inferred latency model",
        "----------------------",
        f"beta (read slope) : {model.beta_us_per_sector:.3f} us/sector",
        f"eta (write slope) : {model.eta_us_per_sector:.3f} us/sector",
        f"T_cdel read/write : {model.tcdel_read_us:.1f} / {model.tcdel_write_us:.1f} us",
        f"T_movd            : {model.tmovd_us / 1000:.2f} ms",
        f"analysed groups   : {report.n_groups}",
    ]
    lines += _describe_op(report.read, "reads")
    lines += _describe_op(report.write, "writes")
    if report.tmovd_group is not None:
        lines.append(
            f"moving delay from group {report.tmovd_group}"
            f" (representative {report.tmovd_representative_us / 1000:.2f} ms)"
        )
    else:
        lines.append("moving delay: no random-access group was usable (0 assumed)")
    if report.fallbacks:
        lines.append("notes:")
        lines += [f"  - {note}" for note in report.fallbacks]
    return "\n".join(lines)


def model_sanity(model: LatencyModel) -> list[str]:
    """Physical-plausibility warnings for an inferred model.

    Returns a list of human-readable warnings (empty when the model
    looks like storage hardware that could exist).  Bounds are loose on
    purpose — they catch estimation *failures*, not unusual devices.
    """
    warnings: list[str] = []
    for label, slope in (
        ("read slope (beta)", model.beta_us_per_sector),
        ("write slope (eta)", model.eta_us_per_sector),
    ):
        # 0.001 us/sector is ~500 GB/s per stream; 1000 us/sector ~0.5 MB/s.
        if slope < 1e-3:
            warnings.append(f"{label} {slope:.2e} us/sector implies >500 GB/s streaming")
        if slope > 1e3:
            warnings.append(f"{label} {slope:.1f} us/sector implies <1 MB/s streaming")
    ratio_hi = max(model.beta_us_per_sector, 1e-12) / max(model.eta_us_per_sector, 1e-12)
    if ratio_hi > 50 or ratio_hi < 1 / 50:
        warnings.append(
            f"read/write slope ratio {ratio_hi:.1f} is extreme; one op type was"
            " probably estimated from a polluted group"
        )
    for label, tcdel in (
        ("read channel delay", model.tcdel_read_us),
        ("write channel delay", model.tcdel_write_us),
    ):
        if tcdel > 5_000:
            warnings.append(f"{label} {tcdel:.0f} us exceeds any host interface by 100x")
    if model.tmovd_us > 1e6:
        warnings.append(f"moving delay {model.tmovd_us / 1e6:.2f} s exceeds any seek+rotation")
    return warnings
