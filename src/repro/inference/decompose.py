"""Decomposition of I/O subsystem latency (Section III + IV).

This module turns a bare block trace into the five-coefficient
:class:`~repro.inference.model.LatencyModel`:

1. group the trace's inter-arrival gaps by (sequentiality, op, size);
2. per operation type, run the Algorithm 1 steepness examination over
   the *sequential* size-groups and keep the two steepest CDFs;
3. pchip-interpolate each CDF and take the inter-arrival time at the
   maximum of its derivative — the group's *representative* time
   :math:`T'_{intt}`, "the best value that explains
   :math:`T_{slat}`";
4. the slope between the two representatives over their size difference
   is the device-time coefficient (:math:`\\beta` for reads,
   :math:`\\eta` for writes); the intercept at the steepest group's
   size is the channel delay :math:`T_{cdel}`;
5. the steepest *random*-access group's representative, minus the
   linear part and the channel delay, is the moving delay
   :math:`T_{movd}`.

Degenerate traces (uniform request size, too few samples per group)
fall back to a least-squares fit across all usable size groups; every
fallback is recorded in the returned :class:`InferenceReport` so the
verification experiments can report how often the paper's primary path
was taken.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.distribution import EmpiricalCDF
from ..analysis.interpolation import argmax_derivative, interpolate_cdf
from ..analysis.steepness import select_steepest
from ..trace.record import OpType
from ..trace.trace import BlockTrace
from .grouping import GroupKey, group_intervals, random_groups, sequential_size_groups
from .model import LatencyModel

__all__ = [
    "InferenceConfig",
    "OpDecomposition",
    "InferenceReport",
    "representative_time",
    "estimate_model",
]


@dataclass(frozen=True, slots=True)
class InferenceConfig:
    """Tunables of the inference pipeline.

    Attributes
    ----------
    resolution_us:
        Quantisation step for the Algorithm 1 PMF.  ``None`` (default)
        picks :func:`repro.analysis.steepness.adaptive_resolution`
        (p10/20, clamped to [0.5 µs, 1 ms]) per group — traces collected
        by real tracers arrive pre-quantised, simulator output does not.
    margin_factor:
        Outlier margin multiplier (paper: 0.5 — half the variance).
    min_group_samples:
        Groups with fewer gaps are ignored (a CDF needs bulk).
    interpolation:
        ``"pchip"`` (paper's choice) or ``"spline"`` for the ablation.
    samples_per_interval:
        Derivative search density inside each CDF knot interval.
    max_cdf_knots:
        Large groups are subsampled to this many CDF knots before
        interpolation (quantile-spaced), bounding analysis cost.
    min_slope_us_per_sector:
        Lower clamp for β/η; a zero slope would make all device times
        size-independent and is always an estimation artefact.
    refine_passes:
        Extra estimation passes that exclude gaps the previous pass's
        model flags as asynchronous submissions
        (``T_intt < T_slat``).  Async gaps contain only channel delay
        plus a CPU burst, form very steep CDF clusters, and would
        otherwise be mistaken for device-time modes.  0 disables
        refinement (the paper's single-pass procedure).
    tmovd_candidates:
        How many of the steepest random-access groups to scan when the
        steepest yields a non-positive moving-delay residual.
    """

    resolution_us: float | None = None
    margin_factor: float = 0.5
    min_group_samples: int = 12
    interpolation: str = "pchip"
    samples_per_interval: int = 16
    max_cdf_knots: int = 512
    min_slope_us_per_sector: float = 1e-4
    refine_passes: int = 1
    tmovd_candidates: int = 4

    def __post_init__(self) -> None:
        if self.resolution_us is not None and self.resolution_us <= 0:
            raise ValueError("resolution must be positive")
        if self.min_group_samples < 2:
            raise ValueError("min_group_samples must be at least 2")
        if self.interpolation not in ("pchip", "spline"):
            raise ValueError("interpolation must be 'pchip' or 'spline'")
        if self.refine_passes < 0:
            raise ValueError("refine_passes must be non-negative")
        if self.tmovd_candidates < 1:
            raise ValueError("tmovd_candidates must be at least 1")


def representative_time(samples: np.ndarray, config: InferenceConfig | None = None) -> float:
    """Representative inter-arrival time of one group (Section IV).

    Interpolates the group's empirical CDF (pchip by default) and
    returns the time at the maximum of the derivative — the location of
    the steepest rise.  Single-valued groups return that value.
    """
    cfg = config or InferenceConfig()
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot locate a representative time in an empty group")
    xs, ys = EmpiricalCDF(arr).knots()
    if len(xs) == 1:
        return float(xs[0])
    if len(xs) > cfg.max_cdf_knots:
        idx = np.unique(np.linspace(0, len(xs) - 1, cfg.max_cdf_knots).astype(int))
        xs, ys = xs[idx], ys[idx]
    interpolant = interpolate_cdf(xs, ys, method=cfg.interpolation)
    location, __ = argmax_derivative(
        interpolant, samples_per_interval=cfg.samples_per_interval, log_x=bool(np.all(xs > 0))
    )
    return location


@dataclass(frozen=True, slots=True)
class OpDecomposition:
    """Diagnostics of the coefficient estimation for one operation type."""

    op: OpType
    size_steep1: int
    size_steep2: int
    steepness1: float
    steepness2: float
    t_rep_steep1_us: float
    t_rep_steep2_us: float
    delta_t_us: float
    slope_us_per_sector: float
    tcdel_us: float
    used_fallback: bool


@dataclass(frozen=True, slots=True)
class InferenceReport:
    """Full outcome of :func:`estimate_model`."""

    model: LatencyModel
    read: OpDecomposition | None
    write: OpDecomposition | None
    tmovd_group: GroupKey | None
    tmovd_representative_us: float
    n_groups: int
    fallbacks: tuple[str, ...] = field(default=())

    @property
    def used_fallback(self) -> bool:
        """``True`` when any estimation stage left the paper's primary path."""
        return bool(self.fallbacks)


def _decompose_op(
    by_size: dict[int, np.ndarray],
    op: OpType,
    cfg: InferenceConfig,
) -> tuple[OpDecomposition | None, list[str]]:
    """Estimate (slope, tcdel) for one operation type.

    Returns ``(decomposition, fallback_notes)``; decomposition is
    ``None`` when no usable group exists at all.
    """
    notes: list[str] = []
    usable = {
        size: gaps for size, gaps in by_size.items() if gaps.size >= cfg.min_group_samples
    }
    if not usable:
        return None, [f"{op.name}: no sequential size group with enough samples"]

    if len(usable) == 1:
        # Degenerate: one request size; slope and intercept cannot be
        # separated.  Split the representative time evenly (documented
        # degenerate fallback).
        size, gaps = next(iter(usable.items()))
        t_rep = representative_time(gaps, cfg)
        slope = max(cfg.min_slope_us_per_sector, t_rep / (2.0 * size))
        tcdel = max(0.0, t_rep - slope * size)
        notes.append(f"{op.name}: single size group ({size}); even split fallback")
        return (
            OpDecomposition(
                op=op,
                size_steep1=size,
                size_steep2=size,
                steepness1=float("nan"),
                steepness2=float("nan"),
                t_rep_steep1_us=t_rep,
                t_rep_steep2_us=t_rep,
                delta_t_us=0.0,
                slope_us_per_sector=slope,
                tcdel_us=tcdel,
                used_fallback=True,
            ),
            notes,
        )

    # Algorithm 1 over every size group; keep the two steepest.
    scored = select_steepest(
        {size: gaps for size, gaps in usable.items()},
        k=2,
        resolution=None if cfg.resolution_us is None else cfg.resolution_us,
        margin_factor=cfg.margin_factor,
        min_samples=cfg.min_group_samples,
    )
    used_fallback = False
    if len(scored) < 2 or scored[0][1].steepness <= 0.0:
        # No group produced a genuine PDF outlier (idle-dominated
        # trace): steepness cannot rank the groups, so take the two
        # *best-populated* ones — their service modes carry the most
        # evidence even when no spike clears the margin.
        by_count = sorted(usable, key=lambda s: (-len(usable[s]), s))[:2]
        scored = [(size, None) for size in by_count]
        notes.append(f"{op.name}: steepness ranking degenerate; using two largest groups")
        used_fallback = True
    (size1, res1), (size2, res2) = scored[0], scored[1]
    size1, size2 = int(size1), int(size2)

    def _group_representative(size: int, result) -> float:
        # The utmost outlier *is* the steep rise's location when
        # Algorithm 1 found one; the interpolated-derivative search is
        # the fallback for outlier-free groups.  (On clean groups the
        # two coincide; on async-polluted groups the outlier anchors on
        # the service mode while the raw derivative maximum can sit on
        # the submission-overlap cluster.)
        if result is not None and result.has_outlier:
            return float(result.utmost_value)
        return representative_time(usable[size], cfg)

    t1 = _group_representative(size1, res1)
    t2 = _group_representative(size2, res2)
    delta_t = abs(t1 - t2)
    slope = delta_t / abs(size1 - size2) if size1 != size2 else 0.0
    if size1 == size2 or slope < cfg.min_slope_us_per_sector:
        # Paper's two-point estimate degenerated; count-weighted
        # least-squares over the representatives of *all* usable groups
        # (weighting keeps sparse, queue-polluted groups from steering
        # the slope).
        sizes = np.array(sorted(usable), dtype=np.float64)
        reps = np.array([representative_time(usable[int(s)], cfg) for s in sizes])
        weights = np.array([len(usable[int(s)]) for s in sizes], dtype=np.float64)
        mean_s = float(np.average(sizes, weights=weights))
        mean_r = float(np.average(reps, weights=weights))
        var_s = float(np.average((sizes - mean_s) ** 2, weights=weights))
        cov = float(np.average((sizes - mean_s) * (reps - mean_r), weights=weights))
        slope = max(cfg.min_slope_us_per_sector, cov / var_s if var_s > 0 else 0.0)
        notes.append(
            f"{op.name}: two-point slope degenerate; weighted least-squares over {len(sizes)} groups"
        )
        used_fallback = True
    tcdel = max(0.0, t1 - slope * size1)
    return (
        OpDecomposition(
            op=op,
            size_steep1=size1,
            size_steep2=size2,
            steepness1=res1.steepness if res1 is not None else float("nan"),
            steepness2=res2.steepness if res2 is not None else float("nan"),
            t_rep_steep1_us=t1,
            t_rep_steep2_us=t2,
            delta_t_us=delta_t,
            slope_us_per_sector=slope,
            tcdel_us=tcdel,
            used_fallback=used_fallback,
        ),
        notes,
    )


def _estimate_once(
    trace: BlockTrace, cfg: InferenceConfig, gap_mask: np.ndarray | None
) -> InferenceReport:
    """One full Section III decomposition pass over (masked) gaps."""
    groups = group_intervals(trace, gap_mask=gap_mask)
    notes: list[str] = []

    read_dec, read_notes = _decompose_op(
        sequential_size_groups(groups, OpType.READ), OpType.READ, cfg
    )
    notes.extend(read_notes)
    write_dec, write_notes = _decompose_op(
        sequential_size_groups(groups, OpType.WRITE), OpType.WRITE, cfg
    )
    notes.extend(write_notes)

    # Sequential groups may be absent entirely (fully random trace):
    # reuse random groups as the size ladder for the missing op.
    if read_dec is None:
        read_dec, extra = _decompose_op(
            {k.size: v for k, v in groups.items() if k.op is OpType.READ}, OpType.READ, cfg
        )
        notes.extend(extra if read_dec is None else [f"{OpType.READ.name}: used random groups"])
    if write_dec is None:
        write_dec, extra = _decompose_op(
            {k.size: v for k, v in groups.items() if k.op is OpType.WRITE}, OpType.WRITE, cfg
        )
        notes.extend(extra if write_dec is None else [f"{OpType.WRITE.name}: used random groups"])

    # A single-op trace borrows the other op's coefficients.
    if read_dec is None and write_dec is None:
        raise ValueError("no request group large enough to analyse; lower min_group_samples")
    if read_dec is None:
        assert write_dec is not None
        notes.append("READ: no read requests; borrowing write coefficients")
    if write_dec is None:
        assert read_dec is not None
        notes.append("WRITE: no write requests; borrowing read coefficients")
    beta = (read_dec or write_dec).slope_us_per_sector  # type: ignore[union-attr]
    eta = (write_dec or read_dec).slope_us_per_sector  # type: ignore[union-attr]
    tcdel_read = (read_dec or write_dec).tcdel_us  # type: ignore[union-attr]
    tcdel_write = (write_dec or read_dec).tcdel_us  # type: ignore[union-attr]

    # T_movd: steepest random-access CDF whose residual over the linear
    # law is positive.  A non-positive residual means the located mode
    # was not a mechanical delay (e.g. an asynchronous cluster), so the
    # next-steepest candidates are scanned before concluding there is
    # no moving delay (which is the correct conclusion on flash).
    rand = {
        key: gaps
        for key, gaps in random_groups(groups).items()
        if gaps.size >= cfg.min_group_samples
    }
    tmovd = 0.0
    tmovd_group: GroupKey | None = None
    tmovd_rep = float("nan")
    if rand:
        ranked = select_steepest(
            rand,
            k=cfg.tmovd_candidates,
            resolution=None if cfg.resolution_us is None else cfg.resolution_us,
            margin_factor=cfg.margin_factor,
            min_samples=cfg.min_group_samples,
        )
        for key, __ in ranked:
            assert isinstance(key, GroupKey)
            slope = beta if key.op is OpType.READ else eta
            tcdel_op = tcdel_read if key.op is OpType.READ else tcdel_write
            # A gap below the *sequential* latency floor cannot contain
            # any device wait (it is an asynchronous submission), so it
            # cannot inform the moving delay — filter before locating
            # the steep rise.
            floor = tcdel_op + slope * key.size
            synced = rand[key][rand[key] >= floor]
            if synced.size < cfg.min_group_samples:
                continue
            rep = representative_time(synced, cfg)
            residual = rep - floor
            if tmovd_group is None:
                # Remember the steepest group even if it is rejected.
                tmovd_group, tmovd_rep = key, rep
            if residual > 0.0:
                tmovd_group, tmovd_rep = key, rep
                tmovd = residual
                break
    else:
        notes.append("TMOVD: no random group with enough samples; assuming 0")

    model = LatencyModel(
        beta_us_per_sector=beta,
        eta_us_per_sector=eta,
        tcdel_read_us=tcdel_read,
        tcdel_write_us=tcdel_write,
        tmovd_us=tmovd,
    )
    return InferenceReport(
        model=model,
        read=read_dec,
        write=write_dec,
        tmovd_group=tmovd_group,
        tmovd_representative_us=tmovd_rep,
        n_groups=len(groups),
        fallbacks=tuple(notes),
    )


def estimate_model(trace: BlockTrace, config: InferenceConfig | None = None) -> InferenceReport:
    """Infer a :class:`LatencyModel` from a bare block trace.

    Implements the full Section III decomposition.  Works on any trace
    with at least a handful of requests; the more size variety the
    trace has, the closer the estimate follows the paper's primary
    two-steepest-CDF path (fallbacks are listed in the report).

    With ``config.refine_passes > 0`` (the default) the estimate is
    iterated: gaps the current model flags as asynchronous submissions
    (``T_intt < T_slat``) are excluded and the decomposition re-run.
    Asynchronous gaps contain no device wait at all, so leaving them in
    seeds the steepness search with clusters that look like — but are
    not — device-time modes.
    """
    cfg = config or InferenceConfig()
    if len(trace) < 3:
        raise ValueError("trace too short to infer a latency model")
    report = _estimate_once(trace, cfg, gap_mask=None)
    gaps = trace.inter_arrival_times()
    for pass_index in range(cfg.refine_passes):
        # Drop gaps shorter than the estimated *device* time: an
        # asynchronous submitter never waits for the medium.  T_sdev
        # (not T_slat) is the threshold on purpose — early passes
        # over-estimate the channel delay, and filtering on T_slat
        # would cull genuine synchronous gaps along with the async ones.
        tsdev = report.model.tsdev_array(trace)[:-1]
        keep = gaps >= tsdev
        # Refinement needs enough synchronous bulk left to analyse, and
        # does nothing when no gap was excluded.
        if keep.all() or keep.sum() < max(cfg.min_group_samples * 2, 16):
            break
        try:
            refined = _estimate_once(trace, cfg, gap_mask=keep)
        except ValueError:
            break
        refined = InferenceReport(
            model=refined.model,
            read=refined.read,
            write=refined.write,
            tmovd_group=refined.tmovd_group,
            tmovd_representative_us=refined.tmovd_representative_us,
            n_groups=refined.n_groups,
            fallbacks=refined.fallbacks
            + (f"refined: pass {pass_index + 1} excluded {int((~keep).sum())} async-suspect gaps",),
        )
        report = refined
    return report
