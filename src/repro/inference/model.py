"""The inferred latency model (Section III's inference model).

The paper expresses device time as a linear law::

    T_sdev(read,  size) = beta * size  [+ T_movd if random]
    T_sdev(write, size) = eta  * size  [+ T_movd if random]

with per-operation channel delays ``T_cdel^read`` / ``T_cdel^write``
so that ``T_slat = T_cdel + T_sdev``.  A :class:`LatencyModel` holds
those five coefficients and evaluates them, scalar or vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.record import OpType
from ..trace.trace import BlockTrace

__all__ = ["LatencyModel"]


@dataclass(frozen=True, slots=True)
class LatencyModel:
    """Five-coefficient analytic latency model of an (old) storage system.

    Attributes
    ----------
    beta_us_per_sector:
        Read device-time slope (:math:`\\beta`), µs per sector.
    eta_us_per_sector:
        Write device-time slope (:math:`\\eta`), µs per sector.
    tcdel_read_us, tcdel_write_us:
        Channel delays per operation type.
    tmovd_us:
        Representative moving delay (seek + rotation) added to random
        accesses.
    """

    beta_us_per_sector: float
    eta_us_per_sector: float
    tcdel_read_us: float
    tcdel_write_us: float
    tmovd_us: float

    def __post_init__(self) -> None:
        for label, value in (
            ("beta", self.beta_us_per_sector),
            ("eta", self.eta_us_per_sector),
            ("tcdel_read", self.tcdel_read_us),
            ("tcdel_write", self.tcdel_write_us),
            ("tmovd", self.tmovd_us),
        ):
            if not np.isfinite(value) or value < 0:
                raise ValueError(f"{label} must be finite and non-negative, got {value}")

    # ------------------------------------------------------------------
    # scalar evaluation
    # ------------------------------------------------------------------

    def tsdev(self, op: OpType, size: int, sequential: bool) -> float:
        """Device time for one request shape."""
        slope = self.beta_us_per_sector if op is OpType.READ else self.eta_us_per_sector
        base = slope * size
        return base if sequential else base + self.tmovd_us

    def tcdel(self, op: OpType) -> float:
        """Channel delay for an operation type."""
        return self.tcdel_read_us if op is OpType.READ else self.tcdel_write_us

    def tslat(self, op: OpType, size: int, sequential: bool) -> float:
        """I/O subsystem latency: channel delay + device time."""
        return self.tcdel(op) + self.tsdev(op, size, sequential)

    # ------------------------------------------------------------------
    # vectorised evaluation
    # ------------------------------------------------------------------

    def tsdev_array(self, trace: BlockTrace) -> np.ndarray:
        """Per-request :math:`T_{sdev}` for a whole trace."""
        slopes = np.where(
            trace.ops == int(OpType.READ), self.beta_us_per_sector, self.eta_us_per_sector
        )
        out = slopes * trace.sizes
        out = out + np.where(trace.sequential_mask(), 0.0, self.tmovd_us)
        return out

    def tcdel_array(self, trace: BlockTrace) -> np.ndarray:
        """Per-request :math:`T_{cdel}` for a whole trace."""
        return np.where(
            trace.ops == int(OpType.READ), self.tcdel_read_us, self.tcdel_write_us
        ).astype(np.float64)

    def tslat_array(self, trace: BlockTrace) -> np.ndarray:
        """Per-request :math:`T_{slat}` for a whole trace."""
        return self.tsdev_array(trace) + self.tcdel_array(trace)

    def describe(self) -> dict[str, float]:
        """Coefficient dictionary for reports and EXPERIMENTS.md tables."""
        return {
            "beta_us_per_sector": self.beta_us_per_sector,
            "eta_us_per_sector": self.eta_us_per_sector,
            "tcdel_read_us": self.tcdel_read_us,
            "tcdel_write_us": self.tcdel_write_us,
            "tmovd_us": self.tmovd_us,
        }
