"""Timing inference for I/O subsystems (the paper's software half)."""

from .decompose import (
    InferenceConfig,
    InferenceReport,
    OpDecomposition,
    estimate_model,
    representative_time,
)
from .diagnostics import explain_report, model_sanity
from .grouping import GroupKey, group_intervals, random_groups, sequential_size_groups
from .idle import IdleExtraction, extract_idle, extract_idle_with_model
from .model import LatencyModel
from .movd import MovdCalibration, calibrate_tmovd, measured_movd_samples, tcdel_profile

__all__ = [
    "InferenceConfig",
    "InferenceReport",
    "OpDecomposition",
    "estimate_model",
    "representative_time",
    "explain_report",
    "model_sanity",
    "GroupKey",
    "group_intervals",
    "random_groups",
    "sequential_size_groups",
    "IdleExtraction",
    "extract_idle",
    "extract_idle_with_model",
    "LatencyModel",
    "MovdCalibration",
    "calibrate_tmovd",
    "measured_movd_samples",
    "tcdel_profile",
]
