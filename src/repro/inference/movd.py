"""Moving-delay (:math:`T_{movd}`) calibration — the paper's Figure 7 study.

To justify modelling random accesses as "linear law + constant moving
delay", the paper replays ten FIU workloads on an enterprise disk and
measures, per random request, the difference between the *observed*
device time and the *linear-model* prediction.  The CDF of that
difference has a consistent steep edge across workloads; the time at
its maximum gradient is the representative :math:`T^{rep}_{movd}`.

:func:`calibrate_tmovd` reproduces that procedure against any storage
device model; :func:`tcdel_profile` produces the Figure 7b companion —
average channel delay per workload per access class.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.distribution import EmpiricalCDF
from ..storage.device import StorageDevice
from ..trace.record import OpType
from ..trace.trace import BlockTrace
from .decompose import InferenceConfig, representative_time

__all__ = ["MovdCalibration", "calibrate_tmovd", "measured_movd_samples", "tcdel_profile"]


def _linear_law_from_sequential(trace: BlockTrace) -> tuple[float, float]:
    """Fit per-op linear device-time laws from *sequential* requests.

    Returns ``(beta, eta)`` in µs/sector, least-squares over measured
    device times of sequential reads/writes (zero intercept — the
    paper's sequential law is purely proportional).  Falls back to the
    global mean rate when an op has no sequential requests.
    """
    if not trace.has_device_times:
        raise ValueError("calibration requires measured device times")
    dev = trace.device_times()
    seq = trace.sequential_mask()
    slopes: list[float] = []
    for op in (OpType.READ, OpType.WRITE):
        mask = seq & (trace.ops == int(op))
        if mask.sum() >= 2:
            sizes = trace.sizes[mask].astype(np.float64)
            slopes.append(float(np.dot(sizes, dev[mask]) / np.dot(sizes, sizes)))
        else:
            slopes.append(float(np.mean(dev / trace.sizes)))
    return slopes[0], slopes[1]


def measured_movd_samples(trace: BlockTrace) -> np.ndarray:
    """Per-random-request moving-delay samples for one collected trace.

    ``T_movd[i] = T_sdev_real[i] - T_sdev_linear[i]`` over random
    accesses, clipped at zero (queueing jitter can push the linear
    prediction above a lucky short seek).
    """
    beta, eta = _linear_law_from_sequential(trace)
    dev = trace.device_times()
    random_mask = ~trace.sequential_mask()
    slopes = np.where(trace.ops == int(OpType.READ), beta, eta)
    residual = dev - slopes * trace.sizes
    return np.clip(residual[random_mask], 0.0, None)


@dataclass(frozen=True, slots=True)
class MovdCalibration:
    """Outcome of the Figure 7a calibration across workloads."""

    per_workload_rep_us: dict[str, float]
    per_workload_cdf: dict[str, EmpiricalCDF]
    representative_us: float

    def spread(self) -> float:
        """Max/min ratio of per-workload representatives.

        The paper's observation is that this spread is small ("each CDF
        exhibits a similar magnitude of gradient change"), which is what
        licenses using one representative value.
        """
        values = [v for v in self.per_workload_rep_us.values() if v > 0]
        if not values:
            return 1.0
        return max(values) / min(values)


def calibrate_tmovd(
    traces: list[BlockTrace],
    config: InferenceConfig | None = None,
) -> MovdCalibration:
    """Reproduce the Figure 7a calibration over collected traces.

    Each trace must carry measured device times (collect with
    ``record_device_times=True``).  Per workload, the moving-delay CDF's
    steepest point is located with the same pchip machinery as the main
    inference; the overall representative is the median across
    workloads.
    """
    if not traces:
        raise ValueError("need at least one calibration trace")
    cfg = config or InferenceConfig()
    reps: dict[str, float] = {}
    cdfs: dict[str, EmpiricalCDF] = {}
    for trace in traces:
        samples = measured_movd_samples(trace)
        positive = samples[samples > 0]
        if positive.size < cfg.min_group_samples:
            continue
        cdfs[trace.name] = EmpiricalCDF(positive)
        reps[trace.name] = representative_time(positive, cfg)
    if not reps:
        raise ValueError("no trace produced enough moving-delay samples")
    return MovdCalibration(
        per_workload_rep_us=reps,
        per_workload_cdf=cdfs,
        representative_us=float(np.median(list(reps.values()))),
    )


def tcdel_profile(trace: BlockTrace, device: StorageDevice) -> dict[str, float]:
    """Average channel delay per access class (Figure 7b).

    Classes are ``SeqR``, ``RandR``, ``SeqW``, ``RandW``; absent classes
    are omitted.  The channel delay is evaluated with the device's
    interface model over the trace's actual request sizes, which is the
    quantity the paper measures on its disk.
    """
    seq = trace.sequential_mask()
    out: dict[str, float] = {}
    for label, op, mask in (
        ("SeqR", OpType.READ, seq & trace.read_mask()),
        ("RandR", OpType.READ, ~seq & trace.read_mask()),
        ("SeqW", OpType.WRITE, seq & trace.write_mask()),
        ("RandW", OpType.WRITE, ~seq & trace.write_mask()),
    ):
        if mask.any():
            sizes = trace.sizes[mask]
            delays = [device.channel.delay_us(op, int(s)) for s in np.unique(sizes)]
            weights = [int((sizes == s).sum()) for s in np.unique(sizes)]
            out[label] = float(np.average(delays, weights=weights))
    return out
