"""Request grouping for the inference model (Section III).

The decomposition analysis "groups all I/O instructions of the workload
... into three different categories based on i) sequentiality, ii)
operation type and iii) request size" and studies the inter-arrival
time distribution of each group.

The gap between request ``i`` and ``i + 1`` is attributed to request
``i``: that gap contains request ``i``'s service time plus whatever
idleness followed it, so the CDF of a group keyed by request ``i``'s
shape is the distribution whose steep edge reveals that shape's
:math:`T_{slat}`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.record import OpType
from ..trace.trace import BlockTrace

__all__ = ["GroupKey", "group_intervals", "sequential_size_groups", "random_groups"]


@dataclass(frozen=True, slots=True, order=True)
class GroupKey:
    """(sequentiality, operation, request size) — one analysis group."""

    sequential: bool
    op: OpType
    size: int

    def __str__(self) -> str:
        pattern = "seq" if self.sequential else "rand"
        return f"{pattern}-{self.op.to_char()}-{self.size}"


def group_intervals(
    trace: BlockTrace,
    min_samples: int = 1,
    gap_mask: np.ndarray | None = None,
) -> dict[GroupKey, np.ndarray]:
    """Partition a trace's inter-arrival gaps by the issuing request's group.

    Returns a mapping from :class:`GroupKey` to the array of gaps that
    followed requests of that group.  The final request contributes no
    gap.  Groups with fewer than ``min_samples`` gaps are dropped.

    ``gap_mask`` (length ``len(trace) - 1``) restricts the analysis to
    selected gaps; the two-pass inference refinement uses it to exclude
    gaps flagged as asynchronous submissions, whose short inter-arrival
    times would otherwise masquerade as device-time modes.
    """
    if len(trace) < 2:
        return {}
    gaps = trace.inter_arrival_times()
    seq = trace.sequential_mask()[:-1]
    ops = trace.ops[:-1]
    sizes = trace.sizes[:-1]
    if gap_mask is not None:
        if len(gap_mask) != len(gaps):
            raise ValueError("gap_mask must have length len(trace) - 1")
        gaps = gaps[gap_mask]
        seq = seq[gap_mask]
        ops = ops[gap_mask]
        sizes = sizes[gap_mask]
        if gaps.size == 0:
            return {}
    out: dict[GroupKey, np.ndarray] = {}
    # Composite integer key for a single vectorised pass:
    # size * 4 + op * 2 + sequential.
    composite = sizes * 4 + ops.astype(np.int64) * 2 + seq.astype(np.int64)
    order = np.argsort(composite, kind="stable")
    sorted_keys = composite[order]
    boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
    for chunk in np.split(order, boundaries):
        if len(chunk) < min_samples:
            continue
        first = chunk[0]
        key = GroupKey(
            sequential=bool(seq[first]),
            op=OpType(int(ops[first])),
            size=int(sizes[first]),
        )
        out[key] = gaps[chunk]
    return out


def sequential_size_groups(
    groups: dict[GroupKey, np.ndarray], op: OpType
) -> dict[int, np.ndarray]:
    """Sequential-access groups of one operation type, keyed by size.

    These are the per-size CDF families the coefficient estimation
    scans for its two steepest curves.
    """
    return {key.size: gaps for key, gaps in groups.items() if key.sequential and key.op is op}


def random_groups(groups: dict[GroupKey, np.ndarray]) -> dict[GroupKey, np.ndarray]:
    """All random-access groups (both operation types).

    The :math:`T_{movd}` estimation looks for the steepest CDF among
    these.
    """
    return {key: gaps for key, gaps in groups.items() if not key.sequential}
