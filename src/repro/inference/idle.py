"""Per-instruction idle extraction (Section IV, hardware emulation input).

Once a latency model exists (inferred, or measured for
":math:`T_{sdev}` known" traces), every inter-arrival gap decomposes::

    T_idle[i] = T_intt[i] - T_sdev[i]      when positive
    async[i]  = T_intt[i] < T_sdev[i]      (the request did not wait)

The positive part is what the replayer sleeps between requests on the
new device; the negative part flags asynchronous submissions whose
timing the post-processing stage later restores.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.io.fingerprint import trace_digest
from ..trace.trace import BlockTrace
from .decompose import InferenceConfig, InferenceReport, estimate_model
from .model import LatencyModel

__all__ = ["IdleExtraction", "extract_idle", "extract_idle_with_model"]


#: Content-keyed memo for inferred latency models.  Model estimation is
#: a pure function of (trace contents, config); comparison harnesses
#: routinely run several reconstruction methods over one OLD trace, and
#: this spares each the repeated inference.  Small and FIFO-bounded.
_MODEL_MEMO: dict[tuple[bytes, InferenceConfig | None], InferenceReport] = {}
_MODEL_MEMO_MAX = 32


def _trace_digest(trace: BlockTrace) -> bytes:
    """Cheap content fingerprint of the columns inference reads.

    The definition lives in :func:`repro.trace.io.fingerprint.
    trace_digest` — one blake2b column digest shared with the result
    lake — and this alias is kept so the memo keys (and the perf tests
    pinning them) read the same as they always did.
    """
    return trace_digest(trace)


def _estimate_model_memo(trace: BlockTrace, config: InferenceConfig | None) -> InferenceReport:
    key = (_trace_digest(trace), config)
    report = _MODEL_MEMO.get(key)
    if report is None:
        report = estimate_model(trace, config)
        if len(_MODEL_MEMO) >= _MODEL_MEMO_MAX:
            _MODEL_MEMO.pop(next(iter(_MODEL_MEMO)))
        _MODEL_MEMO[key] = report
    return report


@dataclass(frozen=True, slots=True)
class IdleExtraction:
    """Idle decomposition of one trace.

    All arrays have length ``len(trace) - 1``: entry ``i`` describes
    the gap between requests ``i`` and ``i + 1``, attributed to request
    ``i`` (Figure 2b).

    Attributes
    ----------
    tintt_us:
        The raw inter-arrival times.
    tsdev_us:
        Device time attributed to the leading request (model-evaluated
        or measured).
    tidle_us:
        ``max(0, tintt - tsdev)`` — the inferred system-delay/user-idle
        component.
    async_mask:
        Gaps where ``tintt < tsdev``: the leading request must have
        been submitted asynchronously.
    report:
        The :class:`InferenceReport` when the model was inferred;
        ``None`` when measured device times were used directly.
    used_measured_tsdev:
        ``True`` for the ":math:`T_{sdev}` known" path.
    """

    tintt_us: np.ndarray
    tsdev_us: np.ndarray
    tidle_us: np.ndarray
    async_mask: np.ndarray
    report: InferenceReport | None
    used_measured_tsdev: bool

    def __len__(self) -> int:
        return len(self.tintt_us)

    @property
    def idle_mask(self) -> np.ndarray:
        """Gaps judged to contain idle time (strictly positive idle)."""
        return self.tidle_us > 0.0

    def idle_frequency(self) -> float:
        """Fraction of gaps containing idle time."""
        if len(self.tintt_us) == 0:
            return 0.0
        return float(self.idle_mask.mean())

    def total_idle_us(self) -> float:
        """Summed inferred idle time."""
        return float(self.tidle_us.sum())

    def mean_idle_us(self) -> float:
        """Average idle period over gaps that have one (0 when none do)."""
        idles = self.tidle_us[self.idle_mask]
        return float(idles.mean()) if idles.size else 0.0


def extract_idle_with_model(trace: BlockTrace, model: LatencyModel) -> IdleExtraction:
    """Decompose gaps using an explicit latency model.

    The model's per-request :math:`T_{sdev}` of the *leading* request is
    subtracted from each gap, exactly as the Section IV reconstruction
    loop does.
    """
    if len(trace) < 2:
        raise ValueError("need at least two requests to extract idle time")
    tintt = trace.inter_arrival_times()
    tsdev = model.tsdev_array(trace)[:-1]
    tidle = np.clip(tintt - tsdev, 0.0, None)
    return IdleExtraction(
        tintt_us=tintt,
        tsdev_us=tsdev,
        tidle_us=tidle,
        async_mask=tintt < tsdev,
        report=None,
        used_measured_tsdev=False,
    )


def extract_idle(
    trace: BlockTrace,
    config: InferenceConfig | None = None,
    prefer_measured: bool = True,
) -> IdleExtraction:
    """Decompose a trace's gaps into device time and idle time.

    For ":math:`T_{sdev}` known" traces (``prefer_measured`` and device
    stamps present) the measured per-request device times are used and
    the inference phase is skipped, as the paper prescribes.  Otherwise
    the latency model is inferred from the trace first.
    """
    if len(trace) < 2:
        raise ValueError("need at least two requests to extract idle time")
    if prefer_measured and trace.has_device_times:
        tintt = trace.inter_arrival_times()
        tsdev = trace.device_times()[:-1]
        tidle = np.clip(tintt - tsdev, 0.0, None)
        return IdleExtraction(
            tintt_us=tintt,
            tsdev_us=tsdev,
            tidle_us=tidle,
            async_mask=tintt < tsdev,
            report=None,
            used_measured_tsdev=True,
        )
    report = _estimate_model_memo(trace, config)
    extraction = extract_idle_with_model(trace, report.model)
    return IdleExtraction(
        tintt_us=extraction.tintt_us,
        tsdev_us=extraction.tsdev_us,
        tidle_us=extraction.tidle_us,
        async_mask=extraction.async_mask,
        report=report,
        used_measured_tsdev=False,
    )
