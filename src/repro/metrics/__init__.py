"""Evaluation metrics: verification, trace comparison, idle breakdowns."""

from .breakdown import IDLE_BUCKETS, IdleBreakdown, average_idle_us, idle_breakdown
from .comparison import (
    InttBreakdown,
    intt_breakdown,
    intt_cdf,
    intt_gap_stats,
    ks_distance,
    median_log_ratio,
)
from .verification import VerificationScore, score_inference

__all__ = [
    "IDLE_BUCKETS",
    "IdleBreakdown",
    "average_idle_us",
    "idle_breakdown",
    "InttBreakdown",
    "intt_breakdown",
    "intt_cdf",
    "intt_gap_stats",
    "ks_distance",
    "median_log_ratio",
    "VerificationScore",
    "score_inference",
]
