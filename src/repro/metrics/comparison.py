"""Trace-to-trace timing comparisons (Figures 1, 3, 12-15).

All reconstruction methods preserve the request pattern, so two traces
of the same workload can be compared gap-by-gap: the ``i``-th
inter-arrival time of the reconstruction against the ``i``-th of the
reference (the trace actually collected on the target system).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.distribution import EmpiricalCDF
from ..trace.trace import BlockTrace

__all__ = [
    "InttBreakdown",
    "intt_breakdown",
    "intt_gap_stats",
    "intt_cdf",
    "ks_distance",
    "median_log_ratio",
]


@dataclass(frozen=True, slots=True)
class InttBreakdown:
    """Longer/equal/shorter split of reconstructed vs reference gaps.

    ``equal`` means within the relative tolerance used at construction
    (the paper's Figure 3b has an explicit 'equal' band).
    """

    longer: float
    equal: float
    shorter: float

    def __post_init__(self) -> None:
        total = self.longer + self.equal + self.shorter
        if abs(total - 1.0) > 1e-9 and total != 0.0:
            raise ValueError(f"fractions must sum to 1, got {total}")

    def as_percentages(self) -> dict[str, float]:
        """Rounded percentage view, like the figure's bar labels."""
        return {
            "longer": round(self.longer * 100, 1),
            "equal": round(self.equal * 100, 1),
            "shorter": round(self.shorter * 100, 1),
        }


def _aligned_gaps(a: BlockTrace, b: BlockTrace) -> tuple[np.ndarray, np.ndarray]:
    """Gap arrays of two same-pattern traces, length-checked."""
    if len(a) != len(b):
        raise ValueError(f"traces differ in length: {len(a)} vs {len(b)}")
    if len(a) < 2:
        raise ValueError("need at least two requests to compare gaps")
    return a.inter_arrival_times(), b.inter_arrival_times()


def intt_breakdown(
    reconstructed: BlockTrace,
    reference: BlockTrace,
    rel_tolerance: float = 0.05,
    abs_tolerance_us: float = 2.0,
) -> InttBreakdown:
    """Classify every reconstructed gap against the reference gap.

    A gap pair is *equal* when it differs by less than
    ``rel_tolerance`` of the reference gap or by less than
    ``abs_tolerance_us`` absolute (whichever is larger) — microsecond
    jitter on a microsecond gap should not count as a miss.
    """
    rec, ref = _aligned_gaps(reconstructed, reference)
    tolerance = np.maximum(np.abs(ref) * rel_tolerance, abs_tolerance_us)
    diff = rec - ref
    longer = diff > tolerance
    shorter = diff < -tolerance
    equal = ~(longer | shorter)
    n = len(diff)
    return InttBreakdown(
        longer=float(longer.sum()) / n,
        equal=float(equal.sum()) / n,
        shorter=float(shorter.sum()) / n,
    )


def intt_gap_stats(a: BlockTrace, b: BlockTrace) -> dict[str, float]:
    """Mean/median/max absolute gap difference between two traces (µs).

    This is the quantity Figures 13 and 14 plot per workload.
    """
    ga, gb = _aligned_gaps(a, b)
    diff = np.abs(ga - gb)
    return {
        "mean_us": float(diff.mean()),
        "median_us": float(np.median(diff)),
        "max_us": float(diff.max()),
        "mean_signed_us": float((ga - gb).mean()),
    }


def intt_cdf(trace: BlockTrace, clip_zero_to_us: float = 1e-2) -> EmpiricalCDF:
    """Empirical CDF of a trace's inter-arrival times.

    Zero/negative gaps (possible after aggressive post-processing) are
    clamped to a tiny positive value so log-axis analyses stay valid.
    """
    gaps = trace.inter_arrival_times()
    return EmpiricalCDF(np.maximum(gaps, clip_zero_to_us))


def ks_distance(a: BlockTrace, b: BlockTrace) -> float:
    """Kolmogorov–Smirnov distance between two traces' gap CDFs.

    Scale-free summary of "how closely does this reconstruction's
    timing distribution hug the target's" — the visual claim of
    Figures 1 and 12 reduced to one number.
    """
    cdf_a = intt_cdf(a)
    cdf_b = intt_cdf(b)
    support = np.unique(np.concatenate([cdf_a.samples, cdf_b.samples]))
    return float(np.max(np.abs(cdf_a.evaluate_on(support) - cdf_b.evaluate_on(support))))


def median_log_ratio(reconstructed: BlockTrace, reference: BlockTrace) -> float:
    """Median of ``log10(rec_gap / ref_gap)`` over aligned gaps.

    0 means typically-identical timing; +1 means the reconstruction's
    typical gap is 10× the reference's.  Robust to the heavy idle tail.
    """
    rec, ref = _aligned_gaps(reconstructed, reference)
    valid = (rec > 0) & (ref > 0)
    if not valid.any():
        return 0.0
    return float(np.median(np.log10(rec[valid] / ref[valid])))
