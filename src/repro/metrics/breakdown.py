"""Idle-time breakdowns (Figures 16 and 17).

Figure 16 reports the average idle period per workload; Figure 17
splits each workload's gaps into four groups — pure :math:`T_{slat}`
(no idle), idle of 0-10 ms, 10-100 ms, and >100 ms — and reports each
group's share of gap *frequency* (request counts) and *period* (summed
inter-arrival duration).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..inference.idle import IdleExtraction

__all__ = ["IDLE_BUCKETS", "IdleBreakdown", "idle_breakdown", "average_idle_us"]

#: (label, lower_us_exclusive, upper_us_inclusive) idle buckets of Figure 17.
IDLE_BUCKETS: tuple[tuple[str, float, float], ...] = (
    ("0-10ms", 0.0, 10_000.0),
    ("10-100ms", 10_000.0, 100_000.0),
    (">100ms", 100_000.0, float("inf")),
)


@dataclass(frozen=True, slots=True)
class IdleBreakdown:
    """Frequency and period shares per Figure 17 group.

    Both dictionaries are keyed ``"Tslat"``, ``"0-10ms"``,
    ``"10-100ms"``, ``">100ms"`` and each sums to 1 (for non-empty
    extractions).
    """

    frequency: dict[str, float]
    period: dict[str, float]

    def idle_frequency(self) -> float:
        """Total fraction of gaps containing any idle."""
        return 1.0 - self.frequency["Tslat"]

    def idle_period(self) -> float:
        """Total fraction of trace duration spent in idle-bearing gaps."""
        return 1.0 - self.period["Tslat"]


def idle_breakdown(extraction: IdleExtraction, min_idle_us: float = 0.0) -> IdleBreakdown:
    """Bucket an idle extraction into the Figure 17 groups.

    A gap belongs to ``Tslat`` when no idle above ``min_idle_us`` was
    inferred in it; otherwise to the bucket containing its idle length.
    The *period* share of a group is the summed inter-arrival time of
    its gaps over the trace's total inter-arrival time — the paper
    groups whole gaps, so a gap that is 99% idle contributes its full
    duration to its idle bucket.

    ``min_idle_us`` separates *user* idleness from the tens-of-µs
    CPU-burst residue that every synchronous gap carries; the Figure
    16/17 experiments use 100 µs.
    """
    n = len(extraction)
    if n == 0:
        raise ValueError("empty extraction")
    if min_idle_us < 0:
        raise ValueError("min_idle_us must be non-negative")
    tidle = extraction.tidle_us
    tintt = extraction.tintt_us
    total_period = float(tintt.sum())
    frequency: dict[str, float] = {}
    period: dict[str, float] = {}
    idle_mask = tidle > min_idle_us
    slat_mask = ~idle_mask
    frequency["Tslat"] = float(slat_mask.sum()) / n
    period["Tslat"] = float(tintt[slat_mask].sum()) / total_period if total_period else 0.0
    for label, lo, hi in IDLE_BUCKETS:
        mask = (tidle > lo) & (tidle <= hi) & idle_mask
        frequency[label] = float(mask.sum()) / n
        period[label] = float(tintt[mask].sum()) / total_period if total_period else 0.0
    return IdleBreakdown(frequency=frequency, period=period)


def average_idle_us(extraction: IdleExtraction, min_idle_us: float = 0.0) -> float:
    """Average idle period over idle-bearing gaps (Figure 16's metric).

    ``min_idle_us`` filters the CPU-burst residue as in
    :func:`idle_breakdown`.
    """
    idles = extraction.tidle_us[extraction.tidle_us > min_idle_us]
    return float(idles.mean()) if idles.size else 0.0
