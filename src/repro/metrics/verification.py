"""Verification metrics for idle inference (Section V-A).

The paper scores the inference model against injected ground truth with
four statistics over per-gap predictions:

- ``Detection(TP) = #TP / #injected idles`` — how many injected idles
  the model noticed;
- ``Detection(FP) = #FP / #gaps`` — how often it hallucinated idle;
- ``Len(TP) = estimated idle / injected idle`` over true positives —
  how much of each detected idle's *length* was recovered;
- ``Len(FP)`` — the estimated idle length at false-positive gaps (the
  damage a misprediction does).

:func:`score_inference` computes all four (plus the raw confusion
counts) given an :class:`~repro.workloads.idle_injection.InjectionRecord`
and the model's per-gap idle estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workloads.idle_injection import InjectionRecord

__all__ = ["VerificationScore", "score_inference"]


@dataclass(frozen=True, slots=True)
class VerificationScore:
    """Confusion statistics of one verification run.

    ``len_tp`` is capped at 1 per gap before averaging so that
    over-estimation cannot mask under-estimation elsewhere (the paper
    reports accuracy percentages ≤ 100%).
    """

    tp: int
    fp: int
    fn: int
    tn: int
    detection_tp: float
    detection_fp: float
    len_tp: float
    len_fp_us: float
    len_fp_samples: np.ndarray

    @property
    def n_gaps(self) -> int:
        """Total scored gaps."""
        return self.tp + self.fp + self.fn + self.tn

    def as_dict(self) -> dict[str, float | int]:
        """Plain-dict view for tabular output."""
        return {
            "tp": self.tp,
            "fp": self.fp,
            "fn": self.fn,
            "tn": self.tn,
            "detection_tp": round(self.detection_tp, 4),
            "detection_fp": round(self.detection_fp, 4),
            "len_tp": round(self.len_tp, 4),
            "len_fp_us": round(self.len_fp_us, 3),
        }


def score_inference(
    injection: InjectionRecord,
    estimated_idle_us: np.ndarray,
    min_idle_us: float = 0.0,
) -> VerificationScore:
    """Score per-gap idle estimates against injected ground truth.

    Parameters
    ----------
    injection:
        The ground-truth record from :func:`repro.workloads.inject_idles`.
    estimated_idle_us:
        The model's idle estimate per gap (length ``injection.n_gaps``).
    min_idle_us:
        Estimates at or below this are treated as "no idle predicted".

    A gap is *positive* when the model predicts idle there, *true* when
    prediction matches injection.  ``Len(TP)`` divides the estimate by
    the injected period per true-positive gap (values above 1 are
    clamped); ``Len(FP)`` averages the estimated idle at false-positive
    gaps.
    """
    est = np.asarray(estimated_idle_us, dtype=np.float64)
    if len(est) != injection.n_gaps:
        raise ValueError(
            f"estimates cover {len(est)} gaps, injection has {injection.n_gaps}"
        )
    truth = injection.mask()
    predicted = est > min_idle_us
    tp_mask = truth & predicted
    fp_mask = ~truth & predicted
    fn_mask = truth & ~predicted
    tn_mask = ~truth & ~predicted
    tp, fp = int(tp_mask.sum()), int(fp_mask.sum())
    fn, tn = int(fn_mask.sum()), int(tn_mask.sum())
    injected = injection.period_of_gap()
    if tp:
        ratios = est[tp_mask] / injected[tp_mask]
        len_tp = float(np.clip(ratios, 0.0, 1.0).mean())
    else:
        len_tp = 0.0
    fp_samples = est[fp_mask]
    return VerificationScore(
        tp=tp,
        fp=fp,
        fn=fn,
        tn=tn,
        detection_tp=tp / len(injection) if len(injection) else 0.0,
        detection_fp=fp / injection.n_gaps if injection.n_gaps else 0.0,
        len_tp=len_tp,
        len_fp_us=float(fp_samples.mean()) if fp_samples.size else 0.0,
        len_fp_samples=fp_samples,
    )
