"""Per-trace and per-workload statistics (Table I style summaries).

Table I of the paper lists, for every workload: the number of block
traces, the average request ("data") size in KB, and the total payload
in GB.  :func:`trace_statistics` computes the per-trace ingredients and
:func:`workload_table` aggregates a family of traces into one table row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .intervals import summarize_pattern
from .record import SECTOR_BYTES
from .trace import BlockTrace

__all__ = ["TraceStatistics", "trace_statistics", "WorkloadRow", "workload_table"]


@dataclass(frozen=True, slots=True)
class TraceStatistics:
    """Summary statistics of a single block trace."""

    name: str
    n_requests: int
    read_fraction: float
    sequential_fraction: float
    mean_request_kb: float
    total_gb: float
    duration_s: float
    mean_intt_us: float
    median_intt_us: float
    iops: float

    def as_dict(self) -> dict[str, float | int | str]:
        """Plain-dict view for tabular output."""
        return {
            "name": self.name,
            "n_requests": self.n_requests,
            "read_fraction": round(self.read_fraction, 4),
            "sequential_fraction": round(self.sequential_fraction, 4),
            "mean_request_kb": round(self.mean_request_kb, 2),
            "total_gb": round(self.total_gb, 3),
            "duration_s": round(self.duration_s, 3),
            "mean_intt_us": round(self.mean_intt_us, 1),
            "median_intt_us": round(self.median_intt_us, 1),
            "iops": round(self.iops, 1),
        }


def trace_statistics(trace: BlockTrace) -> TraceStatistics:
    """Compute :class:`TraceStatistics` for one trace."""
    pattern = summarize_pattern(trace)
    duration_s = trace.duration / 1e6
    return TraceStatistics(
        name=trace.name,
        n_requests=pattern.n_requests,
        read_fraction=pattern.read_fraction,
        sequential_fraction=pattern.sequential_fraction,
        mean_request_kb=trace.mean_request_bytes() / 1024.0,
        total_gb=trace.total_bytes() / 1024.0**3,
        duration_s=duration_s,
        mean_intt_us=pattern.mean_intt_us,
        median_intt_us=pattern.median_intt_us,
        iops=(pattern.n_requests / duration_s) if duration_s > 0 else 0.0,
    )


@dataclass(frozen=True, slots=True)
class WorkloadRow:
    """One Table I row: a workload aggregated over its block traces."""

    workload: str
    category: str
    n_traces: int
    avg_data_size_kb: float
    total_size_gb: float

    def as_dict(self) -> dict[str, float | int | str]:
        """Plain-dict view for tabular output."""
        return {
            "workload": self.workload,
            "category": self.category,
            "n_traces": self.n_traces,
            "avg_data_size_kb": round(self.avg_data_size_kb, 2),
            "total_size_gb": round(self.total_size_gb, 3),
        }


def workload_table(traces: list[BlockTrace], workload: str, category: str = "") -> WorkloadRow:
    """Aggregate a family of traces into a Table I row.

    ``avg_data_size_kb`` is the request-weighted mean request size over
    all the traces (what "Avg data size (KB)" measures in the paper);
    ``total_size_gb`` is the summed payload.
    """
    if not traces:
        return WorkloadRow(workload, category, 0, 0.0, 0.0)
    total_requests = sum(len(t) for t in traces)
    total_bytes = sum(t.total_bytes() for t in traces)
    total_sectors = sum(int(np.sum(t.sizes)) for t in traces)
    avg_kb = (total_sectors * SECTOR_BYTES / total_requests / 1024.0) if total_requests else 0.0
    return WorkloadRow(
        workload=workload,
        category=category,
        n_traces=len(traces),
        avg_data_size_kb=avg_kb,
        total_size_gb=total_bytes / 1024.0**3,
    )
