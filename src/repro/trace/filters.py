"""Trace filtering, windowing, splitting, and merging utilities.

Working with the public trace corpora means slicing: MSRC publishes one
file per volume per day, MSPS splits collections into fixed windows
(the "24HR" workloads are literally day-long windows), and FIU merges
several hosts into one file.  These helpers cover the operations a
study needs before reconstruction:

- :func:`time_window` / :func:`split_windows` — wall-clock slicing;
- :func:`lba_range` — volume/partition slicing;
- :func:`filter_ops` / :func:`filter_sizes` — request-shape slicing;
- :func:`merge_traces` — interleave several traces on one timeline;
- :func:`subsample` — deterministic down-sampling for quick looks.

All functions return new traces; inputs are never mutated.
"""

from __future__ import annotations

import numpy as np

from .record import OpType
from .trace import BlockTrace

__all__ = [
    "time_window",
    "split_windows",
    "lba_range",
    "filter_ops",
    "filter_sizes",
    "merge_traces",
    "subsample",
]


def time_window(trace: BlockTrace, start_us: float, end_us: float, rebase: bool = True) -> BlockTrace:
    """Requests submitted in ``[start_us, end_us)``.

    ``rebase`` shifts the window so its first request submits at 0 —
    what every windowed study wants.
    """
    if end_us < start_us:
        raise ValueError("window end precedes start")
    mask = (trace.timestamps >= start_us) & (trace.timestamps < end_us)
    out = trace.select(mask)
    return out.rebased() if rebase and len(out) else out


def split_windows(trace: BlockTrace, window_us: float) -> list[BlockTrace]:
    """Chop a trace into consecutive fixed-length windows.

    Returns one (rebased) trace per non-empty window, in order.  This is
    how day-scale collections become the paper's per-trace units.
    """
    if window_us <= 0:
        raise ValueError("window length must be positive")
    if len(trace) == 0:
        return []
    start = float(trace.timestamps[0])
    # Window index per request, then one split per populated window —
    # O(n) regardless of how many empty windows the span contains.
    indices = np.floor((trace.timestamps - start) / window_us).astype(np.int64)
    out = []
    boundaries = np.flatnonzero(np.diff(indices)) + 1
    for chunk in np.split(np.arange(len(trace)), boundaries):
        window = trace.select(chunk).rebased()
        out.append(window)
    return out


def lba_range(trace: BlockTrace, first: int, last: int) -> BlockTrace:
    """Requests whose extent overlaps ``[first, last]`` (sectors).

    Overlap, not containment: a request straddling the boundary belongs
    to the volume it touches, as a volume-level tracer would record it.
    """
    if last < first:
        raise ValueError("lba range end precedes start")
    mask = (trace.lbas <= last) & (trace.lbas + trace.sizes > first)
    return trace.select(mask)


def filter_ops(trace: BlockTrace, op: OpType) -> BlockTrace:
    """Only requests of one operation type."""
    return trace.select(trace.ops == int(op))


def filter_sizes(trace: BlockTrace, min_sectors: int = 1, max_sectors: int | None = None) -> BlockTrace:
    """Requests whose size lies in ``[min_sectors, max_sectors]``."""
    if min_sectors < 1:
        raise ValueError("min_sectors must be at least 1")
    mask = trace.sizes >= min_sectors
    if max_sectors is not None:
        if max_sectors < min_sectors:
            raise ValueError("max_sectors below min_sectors")
        mask &= trace.sizes <= max_sectors
    return trace.select(mask)


def merge_traces(traces: list[BlockTrace], name: str = "merged") -> BlockTrace:
    """Interleave several traces on one shared timeline.

    Timestamps are taken as-is (already on a common clock, like the
    multi-host FIU collections); rows are stably merge-sorted by submit
    time.  Device/sync columns survive only when every input has them.
    """
    if not traces:
        raise ValueError("nothing to merge")
    all_dev = all(t.has_device_times for t in traces)
    all_sync = all(t.has_sync_flags for t in traces)
    ts = np.concatenate([t.timestamps for t in traces])
    order = np.argsort(ts, kind="stable")
    merged = BlockTrace(
        timestamps=ts[order],
        lbas=np.concatenate([t.lbas for t in traces])[order],
        sizes=np.concatenate([t.sizes for t in traces])[order],
        ops=np.concatenate([t.ops for t in traces])[order],
        issues=np.concatenate([t.issues for t in traces])[order] if all_dev else None,
        completes=np.concatenate([t.completes for t in traces])[order] if all_dev else None,
        syncs=np.concatenate([t.syncs for t in traces])[order] if all_sync else None,
        name=name,
        metadata={"merged_from": [t.name for t in traces]},
    )
    return merged


def subsample(trace: BlockTrace, fraction: float, seed: int = 0) -> BlockTrace:
    """Keep a uniform random fraction of requests (order preserved).

    Deterministic for a given seed.  Note that subsampling *stretches*
    apparent inter-arrival times; it is a preview tool, not an input to
    timing inference.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must lie in (0, 1]")
    if len(trace) == 0 or fraction == 1.0:
        return trace.select(slice(None))
    rng = np.random.default_rng(seed)
    keep = np.sort(
        rng.choice(len(trace), size=max(1, int(round(fraction * len(trace)))), replace=False)
    )
    return trace.select(keep)
