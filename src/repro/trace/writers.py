"""Trace writers: internal CSV, MSRC CSV, and a blktrace-like text dump.

The internal CSV format round-trips every column a
:class:`~repro.trace.trace.BlockTrace` can carry and is the format the
reconstruction pipeline uses to persist remastered traces, mirroring the
paper's published download bundle.
"""

from __future__ import annotations

from collections.abc import Iterator
from pathlib import Path
from typing import TextIO

from .record import SECTOR_BYTES, OpType
from .trace import BlockTrace

__all__ = ["iter_csv_rows", "write_csv", "write_msrc", "write_blktrace_text", "dump_trace"]


def iter_csv_rows(trace: BlockTrace) -> Iterator[str]:
    """Yield header + data rows of the internal CSV format.

    Public because the streaming service's sink appends pieces row by
    row and must emit byte-identical output to :func:`write_csv` over
    the concatenated trace (the crash-recovery parity contract).
    """
    columns = ["timestamp_us", "lba", "size_sectors", "op"]
    if trace.has_device_times:
        columns += ["issue_us", "complete_us"]
    if trace.has_sync_flags:
        columns.append("sync")
    yield ",".join(columns)
    for i in range(len(trace)):
        fields = [
            f"{trace.timestamps[i]:.3f}",
            str(int(trace.lbas[i])),
            str(int(trace.sizes[i])),
            OpType(int(trace.ops[i])).to_char(),
        ]
        if trace.has_device_times:
            assert trace.issues is not None and trace.completes is not None
            fields += [f"{trace.issues[i]:.3f}", f"{trace.completes[i]:.3f}"]
        if trace.has_sync_flags:
            assert trace.syncs is not None
            fields.append("1" if trace.syncs[i] else "0")
        yield ",".join(fields)


def write_csv(trace: BlockTrace, target: TextIO) -> None:
    """Write ``trace`` in the internal CSV format to an open text file."""
    for row in iter_csv_rows(trace):
        target.write(row + "\n")


def write_msrc(trace: BlockTrace, target: TextIO) -> None:
    """Write ``trace`` as MSR Cambridge CSV rows.

    Requires device stamps (MSRC traces always have a response time).
    Timestamps are emitted as Windows filetime ticks (100 ns).
    """
    if not trace.has_device_times:
        raise ValueError("MSRC format requires issue/completion stamps")
    assert trace.issues is not None and trace.completes is not None
    host = trace.name or "host"
    for i in range(len(trace)):
        ticks = int(round(trace.timestamps[i] * 10.0))
        response_ticks = int(round((trace.completes[i] - trace.issues[i]) * 10.0))
        op = "Read" if int(trace.ops[i]) == int(OpType.READ) else "Write"
        offset = int(trace.lbas[i]) * SECTOR_BYTES
        size = int(trace.sizes[i]) * SECTOR_BYTES
        target.write(f"{ticks},{host},0,{op},{offset},{size},{response_ticks}\n")


def write_blktrace_text(trace: BlockTrace, target: TextIO, device: str = "259,0") -> None:
    """Write a simplified ``blkparse``-style text dump.

    One ``D`` (dispatch) line per request, plus a ``C`` (complete) line
    when completion stamps are known — the two events the paper's
    collection step records.  Format per line::

        <device> <cpu> <seq> <time_s> <pid> <action> <rwbs> <lba> + <size>

    This is a presentation format only; it is not parsed back.
    """
    seq = 0
    events: list[tuple[float, str]] = []
    for i in range(len(trace)):
        rwbs = "R" if int(trace.ops[i]) == int(OpType.READ) else "W"
        lba = int(trace.lbas[i])
        size = int(trace.sizes[i])
        events.append(
            (float(trace.timestamps[i]), f"D {rwbs} {lba} + {size}"),
        )
        if trace.has_device_times:
            assert trace.completes is not None
            events.append((float(trace.completes[i]), f"C {rwbs} {lba} + {size}"))
    events.sort(key=lambda pair: pair[0])
    for time_us, suffix in events:
        seq += 1
        target.write(f"{device} 0 {seq} {time_us / 1e6:.9f} 0 {suffix}\n")


def dump_trace(trace: BlockTrace, path: str | Path, fmt: str = "internal") -> Path:
    """Persist ``trace`` to ``path`` in the chosen format.

    Returns the path written.  ``fmt`` is one of ``"internal"``,
    ``"msrc"``, ``"blktrace"`` (text), or ``"npz"`` — the versioned
    binary store format (see :mod:`repro.trace.io.store`), which
    round-trips every column bit-exactly and loads without parsing.
    """
    if fmt == "npz":
        from .io.store import save_trace_npz

        return save_trace_npz(trace, path)
    writers = {
        "internal": write_csv,
        "msrc": write_msrc,
        "blktrace": write_blktrace_text,
    }
    if fmt not in writers:
        raise ValueError(
            f"unknown trace format {fmt!r}; choose from {sorted(writers) + ['npz']}"
        )
    p = Path(path)
    with p.open("w", encoding="utf-8") as handle:
        writers[fmt](trace, handle)
    return p
