"""Single block-level I/O record and operation types.

Every timestamp in this library is expressed in **microseconds** as a
``float`` unless a function name or docstring says otherwise.  Block
addresses (LBAs) and request sizes are expressed in **512-byte sectors**,
the unit used underneath the Linux block layer where the paper's traces
were collected.

The record mirrors the information available in the public traces the
paper reconstructs (FIU SRCMap / IODedup, Microsoft Production Server,
MSR Cambridge):

- ``timestamp`` -- the submit time observed below the block layer,
- ``lba`` / ``size`` -- target address and length,
- ``op`` -- read or write,
- ``issue`` / ``complete`` -- optional device-driver issue and completion
  stamps.  MSPS and MSRC traces carry these (the paper calls such traces
  ":math:`T_{sdev}` known"); FIU traces do not.
- ``sync`` -- optional ground-truth synchronous/asynchronous flag.  Real
  traces never record this; our synthetic workload generator does, which
  lets the verification experiments score the post-processing stage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["OpType", "IORecord", "SECTOR_BYTES"]

#: Bytes per logical sector, the sizing unit for ``lba`` and ``size``.
SECTOR_BYTES = 512


class OpType(enum.IntEnum):
    """Block operation type.

    Only reads and writes appear in the paper's traces; discard/flush
    style operations were not part of 2007-2009 collections.
    """

    READ = 0
    WRITE = 1

    @classmethod
    def from_str(cls, text: str) -> "OpType":
        """Parse an operation type from common trace spellings.

        Accepts ``R``/``W``, ``Read``/``Write`` (any case), and the
        numeric forms ``0``/``1`` used by some trace dumps.

        >>> OpType.from_str("Read")
        <OpType.READ: 0>
        >>> OpType.from_str("w")
        <OpType.WRITE: 1>
        """
        t = text.strip().lower()
        if t in ("r", "read", "0"):
            return cls.READ
        if t in ("w", "write", "1"):
            return cls.WRITE
        raise ValueError(f"unrecognised operation type: {text!r}")

    def to_char(self) -> str:
        """Single-character spelling used by our writers (``R`` or ``W``)."""
        return "R" if self is OpType.READ else "W"


@dataclass(frozen=True, slots=True)
class IORecord:
    """One block request as observed underneath the block layer.

    Instances are immutable; bulk trace manipulation happens on the
    columnar :class:`~repro.trace.trace.BlockTrace` instead, which stores
    the same fields as NumPy arrays.  ``IORecord`` exists for row-wise
    construction, parsing, and readable test fixtures.

    Attributes
    ----------
    timestamp:
        Submit time in microseconds from the start of the trace.
    lba:
        Logical block address of the first sector.
    size:
        Request length in sectors (must be positive).
    op:
        :class:`OpType.READ` or :class:`OpType.WRITE`.
    issue:
        Optional driver-to-device issue timestamp (microseconds), as
        captured by event tracing on MSPS/MSRC systems.
    complete:
        Optional device completion timestamp (microseconds).
    sync:
        Optional ground-truth flag: ``True`` when the submitter blocked
        on completion.  ``None`` when unknown (all real traces).
    """

    timestamp: float
    lba: int
    size: int
    op: OpType
    issue: float | None = field(default=None)
    complete: float | None = field(default=None)
    sync: bool | None = field(default=None)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"request size must be positive, got {self.size}")
        if self.lba < 0:
            raise ValueError(f"lba must be non-negative, got {self.lba}")
        if self.timestamp < 0:
            raise ValueError(f"timestamp must be non-negative, got {self.timestamp}")
        if self.complete is not None and self.issue is not None and self.complete < self.issue:
            raise ValueError("completion stamp precedes issue stamp")

    @property
    def bytes(self) -> int:
        """Request length in bytes."""
        return self.size * SECTOR_BYTES

    @property
    def end_lba(self) -> int:
        """First sector *after* the request (``lba + size``)."""
        return self.lba + self.size

    @property
    def device_time(self) -> float | None:
        """Measured device service time ``complete - issue`` when known.

        This is the quantity the paper calls :math:`T_{sdev}` for traces
        collected with event-based kernel tracing.
        """
        if self.issue is None or self.complete is None:
            return None
        return self.complete - self.issue

    def is_read(self) -> bool:
        """``True`` for reads."""
        return self.op is OpType.READ

    def is_write(self) -> bool:
        """``True`` for writes."""
        return self.op is OpType.WRITE

    def shifted(self, delta: float) -> "IORecord":
        """Return a copy with all timestamps moved by ``delta`` microseconds."""
        return IORecord(
            timestamp=self.timestamp + delta,
            lba=self.lba,
            size=self.size,
            op=self.op,
            issue=None if self.issue is None else self.issue + delta,
            complete=None if self.complete is None else self.complete + delta,
            sync=self.sync,
        )

    def contiguous_with(self, previous: "IORecord") -> bool:
        """``True`` if this request starts exactly where ``previous`` ended.

        This is the sequentiality test used when grouping requests for
        the inference model (Section III of the paper).
        """
        return self.lba == previous.end_lba
