"""Inter-arrival time and access-pattern helpers.

The inference model of the paper operates almost entirely on the
inter-arrival times (:math:`T_{intt}`) of a trace, partitioned by
(sequentiality, operation type, request size).  This module provides the
vectorised primitives for that partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .record import OpType
from .trace import BlockTrace

__all__ = [
    "inter_arrival_times",
    "interval_after_mask",
    "sequentiality_fraction",
    "read_fraction",
    "AccessPatternSummary",
    "summarize_pattern",
]


def inter_arrival_times(trace: BlockTrace) -> np.ndarray:
    """Inter-arrival times of a trace (length ``n - 1``).

    Thin alias of :meth:`BlockTrace.inter_arrival_times`, exported at
    module level because the inference code reads better with a free
    function.
    """
    return trace.inter_arrival_times()


def interval_after_mask(trace: BlockTrace, mask: np.ndarray) -> np.ndarray:
    """Inter-arrival times that *follow* the requests selected by ``mask``.

    The paper attributes the gap between request ``i`` and ``i + 1`` to
    request ``i``: that gap contains request ``i``'s service time plus
    any idle that followed it.  Accordingly, when the inference model
    builds the CDF of :math:`T_{intt}` for, say, sequential 8-sector
    reads, it collects the gaps following those requests.

    ``mask`` has trace length; the last request is ignored because no
    gap follows it.
    """
    if len(mask) != len(trace):
        raise ValueError("mask length must equal trace length")
    if len(trace) < 2:
        return np.empty(0, dtype=np.float64)
    gaps = trace.inter_arrival_times()
    return gaps[mask[:-1]]


def sequentiality_fraction(trace: BlockTrace) -> float:
    """Fraction of requests that continue the preceding request.

    0.0 for traces shorter than two requests.
    """
    if len(trace) < 2:
        return 0.0
    return float(trace.sequential_mask().mean())


def read_fraction(trace: BlockTrace) -> float:
    """Fraction of read requests (0.0 for an empty trace)."""
    if len(trace) == 0:
        return 0.0
    return float(trace.read_mask().mean())


@dataclass(frozen=True, slots=True)
class AccessPatternSummary:
    """Compact description of a trace's access pattern.

    Produced by :func:`summarize_pattern`; consumed by reports, tests
    and the Table I regeneration bench.
    """

    n_requests: int
    read_fraction: float
    sequential_fraction: float
    mean_size_sectors: float
    distinct_sizes: int
    mean_intt_us: float
    median_intt_us: float
    p99_intt_us: float
    duration_us: float

    def as_dict(self) -> dict[str, float | int]:
        """Plain-dict view for tabular output."""
        return {
            "n_requests": self.n_requests,
            "read_fraction": self.read_fraction,
            "sequential_fraction": self.sequential_fraction,
            "mean_size_sectors": self.mean_size_sectors,
            "distinct_sizes": self.distinct_sizes,
            "mean_intt_us": self.mean_intt_us,
            "median_intt_us": self.median_intt_us,
            "p99_intt_us": self.p99_intt_us,
            "duration_us": self.duration_us,
        }


def summarize_pattern(trace: BlockTrace) -> AccessPatternSummary:
    """Summarise the access pattern of ``trace``.

    Safe on tiny traces: interval statistics are reported as 0 when
    fewer than two requests exist.
    """
    gaps = trace.inter_arrival_times() if len(trace) >= 2 else np.empty(0)
    return AccessPatternSummary(
        n_requests=len(trace),
        read_fraction=read_fraction(trace),
        sequential_fraction=sequentiality_fraction(trace),
        mean_size_sectors=float(trace.sizes.mean()) if len(trace) else 0.0,
        distinct_sizes=int(np.unique(trace.sizes).size) if len(trace) else 0,
        mean_intt_us=float(gaps.mean()) if gaps.size else 0.0,
        median_intt_us=float(np.median(gaps)) if gaps.size else 0.0,
        p99_intt_us=float(np.percentile(gaps, 99)) if gaps.size else 0.0,
        duration_us=trace.duration,
    )


def op_mask(trace: BlockTrace, op: OpType) -> np.ndarray:
    """Boolean mask of requests with operation type ``op``."""
    return trace.ops == int(op)
