"""Parsers for the public block-trace formats the paper reconstructs.

Three on-disk dialects are supported, matching the three workload
families in the evaluation, plus this library's own round-trip CSV:

``parse_msrc``
    MSR Cambridge enterprise traces: CSV rows of
    ``Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime`` where
    ``Timestamp`` is a Windows filetime (100 ns ticks), ``Offset``/
    ``Size`` are bytes, and ``ResponseTime`` is in 100 ns ticks.  These
    traces are ":math:`T_{sdev}` known".

``parse_fiu``
    FIU SRCMap / IODedup text rows of
    ``timestamp pid process lba size_blocks op major minor [md5]`` with a
    Unix timestamp in seconds and sizes in 512-byte blocks.  No device
    stamps — ":math:`T_{sdev}` unknown".

``parse_msps``
    Microsoft Production Server rows as produced by the event-based
    kernel tracer the paper cites: ``issue_us complete_us op lba size``.
    Issue/completion stamps present.

``parse_internal``
    This library's writer format (see :mod:`repro.trace.writers`).

All parsers accept an iterable of lines, skip blank lines and ``#``
comments, and return a :class:`~repro.trace.trace.BlockTrace` sorted by
submit time.
"""

from __future__ import annotations

from collections.abc import Iterable
from pathlib import Path

from .record import SECTOR_BYTES, OpType
from .trace import BlockTrace, TraceBuilder

__all__ = [
    "parse_msrc",
    "parse_fiu",
    "parse_msps",
    "parse_internal",
    "load_trace",
    "TraceParseError",
    "ParseError",
]

#: Windows filetime tick length in microseconds (100 ns).
_FILETIME_TICK_US = 0.1


class TraceParseError(ValueError):
    """Raised when a trace line cannot be interpreted.

    Carries the one-based line number to make bad rows findable in
    multi-gigabyte trace files.
    """

    def __init__(self, lineno: int, line: str, reason: str) -> None:
        super().__init__(f"line {lineno}: {reason}: {line!r}")
        self.lineno = lineno
        self.line = line
        self.reason = reason


#: Short alias; both names are public.
ParseError = TraceParseError


def _content_lines(lines: Iterable[str]) -> Iterable[tuple[int, str]]:
    """Yield ``(lineno, stripped_line)`` for non-blank, non-comment rows."""
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        yield lineno, line


def parse_msrc(lines: Iterable[str], name: str = "msrc", rebase: bool = True) -> BlockTrace:
    """Parse MSR Cambridge CSV rows.

    Timestamps are rebased so the first request submits at 0 µs
    (``rebase=False`` keeps the original clock — the chunked reader
    needs later segments on the file's absolute timeline).
    ``Offset`` and ``Size`` are converted from bytes to sectors;
    byte-unaligned offsets are floored to the containing sector, which
    is what the original collection did at the block layer.
    """
    builder = TraceBuilder(name=name, metadata={"format": "msrc", "category": "MSRC"})
    for lineno, line in _content_lines(lines):
        parts = line.split(",")
        if len(parts) < 7:
            raise TraceParseError(lineno, line, "expected 7 comma-separated fields")
        try:
            ticks = int(parts[0])
            op = OpType.from_str(parts[3])
            offset_bytes = int(parts[4])
            size_bytes = int(parts[5])
            response_ticks = int(parts[6])
        except ValueError as exc:
            raise TraceParseError(lineno, line, str(exc)) from exc
        if size_bytes <= 0:
            raise TraceParseError(lineno, line, "non-positive request size")
        submit_us = ticks * _FILETIME_TICK_US
        response_us = response_ticks * _FILETIME_TICK_US
        size_sectors = max(1, (size_bytes + SECTOR_BYTES - 1) // SECTOR_BYTES)
        builder.append(
            timestamp=submit_us,
            lba=offset_bytes // SECTOR_BYTES,
            size=size_sectors,
            op=op,
            issue=submit_us,
            complete=submit_us + response_us,
        )
    trace = builder.build(sort=True)
    return trace.rebased() if rebase else trace


def parse_fiu(lines: Iterable[str], name: str = "fiu", rebase: bool = True) -> BlockTrace:
    """Parse FIU SRCMap / IODedup whitespace-separated rows.

    The trailing md5 field present in IODedup traces is ignored.
    Timestamps are converted from seconds to microseconds and rebased
    to 0.
    """
    builder = TraceBuilder(name=name, metadata={"format": "fiu", "category": "FIU"})
    for lineno, line in _content_lines(lines):
        parts = line.split()
        if len(parts) < 6:
            raise TraceParseError(lineno, line, "expected at least 6 whitespace-separated fields")
        try:
            ts_s = float(parts[0])
            lba = int(parts[3])
            size_blocks = int(parts[4])
            op = OpType.from_str(parts[5])
        except ValueError as exc:
            raise TraceParseError(lineno, line, str(exc)) from exc
        if size_blocks <= 0:
            raise TraceParseError(lineno, line, "non-positive request size")
        builder.append(timestamp=ts_s * 1e6, lba=lba, size=size_blocks, op=op)
    trace = builder.build(sort=True)
    return trace.rebased() if rebase else trace


def parse_msps(lines: Iterable[str], name: str = "msps", rebase: bool = True) -> BlockTrace:
    """Parse Microsoft Production Server event-trace rows.

    Row format: ``issue_us complete_us op lba size_sectors``.  The
    submit timestamp below the block layer is taken to be the issue
    stamp, which matches how the paper treats MSPS collections (issue
    and completion stamps captured at the device driver).
    """
    builder = TraceBuilder(name=name, metadata={"format": "msps", "category": "MSPS"})
    for lineno, line in _content_lines(lines):
        parts = line.split()
        if len(parts) < 5:
            raise TraceParseError(lineno, line, "expected 5 whitespace-separated fields")
        try:
            issue_us = float(parts[0])
            complete_us = float(parts[1])
            op = OpType.from_str(parts[2])
            lba = int(parts[3])
            size = int(parts[4])
        except ValueError as exc:
            raise TraceParseError(lineno, line, str(exc)) from exc
        if complete_us < issue_us:
            raise TraceParseError(lineno, line, "completion precedes issue")
        if size <= 0:
            raise TraceParseError(lineno, line, "non-positive request size")
        builder.append(
            timestamp=issue_us, lba=lba, size=size, op=op, issue=issue_us, complete=complete_us
        )
    trace = builder.build(sort=True)
    return trace.rebased() if rebase else trace


def parse_internal(lines: Iterable[str], name: str = "") -> BlockTrace:
    """Parse this library's CSV format (see :func:`repro.trace.writers.write_csv`).

    Header row: ``timestamp_us,lba,size_sectors,op[,issue_us,complete_us][,sync]``.
    Optional columns appear only when the writing trace carried them.
    """
    rows = _content_lines(lines)
    try:
        _, header = next(iter(rows))
    except StopIteration:
        return BlockTrace([], [], [], [], name=name)
    columns = [c.strip() for c in header.split(",")]
    required = ["timestamp_us", "lba", "size_sectors", "op"]
    if columns[: len(required)] != required:
        raise TraceParseError(1, header, f"header must start with {','.join(required)}")
    has_dev = "issue_us" in columns
    if has_dev and "complete_us" not in columns:
        raise TraceParseError(1, header, "header has issue_us but no complete_us")
    has_sync = "sync" in columns
    builder = TraceBuilder(name=name, metadata={"format": "internal"})
    index = {c: i for i, c in enumerate(columns)}
    for lineno, line in rows:
        parts = line.split(",")
        if len(parts) != len(columns):
            raise TraceParseError(lineno, line, f"expected {len(columns)} fields")
        try:
            builder.append(
                timestamp=float(parts[index["timestamp_us"]]),
                lba=int(parts[index["lba"]]),
                size=int(parts[index["size_sectors"]]),
                op=OpType.from_str(parts[index["op"]]),
                issue=float(parts[index["issue_us"]]) if has_dev else None,
                complete=float(parts[index["complete_us"]]) if has_dev else None,
                sync=parts[index["sync"]].strip() == "1" if has_sync else None,
            )
        except ValueError as exc:
            raise TraceParseError(lineno, line, str(exc)) from exc
    return builder.build(sort=True)


_PARSERS = {
    "msrc": parse_msrc,
    "fiu": parse_fiu,
    "msps": parse_msps,
    "internal": parse_internal,
}


def load_trace(
    path: str | Path,
    fmt: str = "internal",
    name: str | None = None,
    engine: str = "bulk",
) -> BlockTrace:
    """Load a trace file from disk.

    Parameters
    ----------
    path:
        File to read.
    fmt:
        One of ``"msrc"``, ``"fiu"``, ``"msps"``, ``"internal"`` — or
        ``"npz"`` for the binary trace store format (see
        :mod:`repro.trace.io.store`).
    name:
        Workload name; defaults to the file stem (ignored for
        ``"npz"``, which stores its name).
    engine:
        ``"bulk"`` (default) parses through the vectorised whole-file
        reader in :mod:`repro.trace.io.bulk`; ``"line"`` uses the
        row-wise parsers in this module.  Results are identical; bulk
        is several times faster on large files.
    """
    if fmt == "npz":
        from .io.store import load_trace_npz

        return load_trace_npz(path)
    if fmt not in _PARSERS:
        raise ValueError(
            f"unknown trace format {fmt!r}; choose from {sorted(_PARSERS) + ['npz']}"
        )
    if engine == "bulk":
        from .io.bulk import load_trace_bulk

        return load_trace_bulk(path, fmt=fmt, name=name)
    if engine != "line":
        raise ValueError(f"unknown parse engine {engine!r}; choose 'bulk' or 'line'")
    p = Path(path)
    with p.open("r", encoding="utf-8") as handle:
        return _PARSERS[fmt](handle, name=name if name is not None else p.stem)
