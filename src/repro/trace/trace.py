"""Columnar block-trace container.

A :class:`BlockTrace` stores a whole trace as parallel NumPy arrays, which
is what makes reconstructing the paper's 577 traces tractable: the
inference model's per-group CDF analysis and the replayer's timestamp
arithmetic are all vectorised column operations.

The container is deliberately append-free: traces are built once (by a
parser, a generator, or a collector) from complete columns.  Incremental
construction goes through :class:`TraceBuilder`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Any

import numpy as np

from .record import SECTOR_BYTES, IORecord, OpType

__all__ = ["BlockTrace", "TraceBuilder"]


class BlockTrace:
    """An ordered sequence of block I/O requests in columnar form.

    Parameters
    ----------
    timestamps:
        Submit times in microseconds, non-decreasing.
    lbas:
        Logical block addresses (sectors).
    sizes:
        Request sizes (sectors), all positive.
    ops:
        Operation codes matching :class:`~repro.trace.record.OpType`.
    issues, completes:
        Optional per-request issue/completion stamps.  Either both are
        given or neither; a trace carrying them is ":math:`T_{sdev}`
        known" in the paper's terminology.
    syncs:
        Optional ground-truth synchronous flags (synthetic traces only).
    name:
        Workload name, e.g. ``"MSNFS"`` or ``"ikki"``.
    metadata:
        Free-form provenance dictionary (category, collection device,
        generator parameters, reconstruction method, ...).
    """

    __slots__ = (
        "timestamps",
        "lbas",
        "sizes",
        "ops",
        "issues",
        "completes",
        "syncs",
        "name",
        "metadata",
        "content_fingerprint",
    )

    def __init__(
        self,
        timestamps: np.ndarray | Sequence[float],
        lbas: np.ndarray | Sequence[int],
        sizes: np.ndarray | Sequence[int],
        ops: np.ndarray | Sequence[int],
        issues: np.ndarray | Sequence[float] | None = None,
        completes: np.ndarray | Sequence[float] | None = None,
        syncs: np.ndarray | Sequence[bool] | None = None,
        name: str = "",
        metadata: dict[str, Any] | None = None,
    ) -> None:
        self.timestamps = np.asarray(timestamps, dtype=np.float64)
        self.lbas = np.asarray(lbas, dtype=np.int64)
        self.sizes = np.asarray(sizes, dtype=np.int64)
        self.ops = np.asarray(ops, dtype=np.int8)
        n = len(self.timestamps)
        for label, column in (("lbas", self.lbas), ("sizes", self.sizes), ("ops", self.ops)):
            if len(column) != n:
                raise ValueError(f"column {label!r} has length {len(column)}, expected {n}")
        if (issues is None) != (completes is None):
            raise ValueError("issues and completes must be given together")
        self.issues = None if issues is None else np.asarray(issues, dtype=np.float64)
        self.completes = None if completes is None else np.asarray(completes, dtype=np.float64)
        for label, column in (("issues", self.issues), ("completes", self.completes)):
            if column is not None and len(column) != n:
                raise ValueError(f"column {label!r} has length {len(column)}, expected {n}")
        self.syncs = None if syncs is None else np.asarray(syncs, dtype=bool)
        if self.syncs is not None and len(self.syncs) != n:
            raise ValueError(f"column 'syncs' has length {len(self.syncs)}, expected {n}")
        if n and np.any(self.sizes <= 0):
            raise ValueError("all request sizes must be positive")
        if n and np.any(np.diff(self.timestamps) < 0):
            raise ValueError("timestamps must be non-decreasing; sort before construction")
        self.name = name
        self.metadata = dict(metadata or {})
        # Optional provenance stamp set *after* construction by the
        # trace store (:meth:`repro.trace.io.cache.TraceStore.
        # get_or_build`): a content key that uniquely determines every
        # column.  Deliberately not a constructor parameter and not
        # copied by ``select``/``shifted``/``with_timestamps`` — any
        # derived trace has different columns, so it must start
        # unstamped.  Consumers (the inference memo) use it to skip
        # re-hashing multi-million-row columns.
        self.content_fingerprint: str | None = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_records(
        cls,
        records: Iterable[IORecord],
        name: str = "",
        metadata: dict[str, Any] | None = None,
    ) -> "BlockTrace":
        """Build a trace from row-wise :class:`IORecord` objects.

        Records must already be in non-decreasing timestamp order.
        Issue/completion columns are kept only if *every* record carries
        them; a sync column is kept only if every record carries one.
        """
        rows = list(records)
        has_dev = all(r.issue is not None and r.complete is not None for r in rows) and rows
        has_sync = all(r.sync is not None for r in rows) and rows
        return cls(
            timestamps=[r.timestamp for r in rows],
            lbas=[r.lba for r in rows],
            sizes=[r.size for r in rows],
            ops=[int(r.op) for r in rows],
            issues=[r.issue for r in rows] if has_dev else None,
            completes=[r.complete for r in rows] if has_dev else None,
            syncs=[r.sync for r in rows] if has_sync else None,
            name=name,
            metadata=metadata,
        )

    def empty_like(self) -> "BlockTrace":
        """An empty trace with the same name/metadata."""
        return BlockTrace([], [], [], [], name=self.name, metadata=dict(self.metadata))

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.timestamps)

    def __iter__(self) -> Iterator[IORecord]:
        for i in range(len(self)):
            yield self.record(i)

    def __getitem__(self, index: int | slice | np.ndarray) -> "IORecord | BlockTrace":
        if isinstance(index, (int, np.integer)):
            return self.record(int(index))
        return self.select(index)

    def __repr__(self) -> str:
        label = self.name or "<unnamed>"
        return f"BlockTrace({label}, n={len(self)}, span={self.duration / 1e6:.3f}s)"

    def record(self, i: int) -> IORecord:
        """Materialise request ``i`` as an :class:`IORecord`."""
        return IORecord(
            timestamp=float(self.timestamps[i]),
            lba=int(self.lbas[i]),
            size=int(self.sizes[i]),
            op=OpType(int(self.ops[i])),
            issue=None if self.issues is None else float(self.issues[i]),
            complete=None if self.completes is None else float(self.completes[i]),
            sync=None if self.syncs is None else bool(self.syncs[i]),
        )

    def select(self, index: slice | np.ndarray) -> "BlockTrace":
        """Sub-trace by slice, boolean mask, or integer index array.

        The selection must preserve timestamp order (any monotone
        selection of an ordered trace does).
        """
        return BlockTrace(
            timestamps=self.timestamps[index],
            lbas=self.lbas[index],
            sizes=self.sizes[index],
            ops=self.ops[index],
            issues=None if self.issues is None else self.issues[index],
            completes=None if self.completes is None else self.completes[index],
            syncs=None if self.syncs is None else self.syncs[index],
            name=self.name,
            metadata=dict(self.metadata),
        )

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------

    @property
    def duration(self) -> float:
        """Trace span in microseconds (0 for traces with < 2 requests)."""
        if len(self) < 2:
            return 0.0
        return float(self.timestamps[-1] - self.timestamps[0])

    @property
    def has_device_times(self) -> bool:
        """``True`` when issue/completion stamps are present.

        The paper calls such traces ":math:`T_{sdev}` known"; they allow
        skipping the device-time inference phase entirely.
        """
        return self.issues is not None and self.completes is not None

    @property
    def has_sync_flags(self) -> bool:
        """``True`` when ground-truth sync/async flags are present."""
        return self.syncs is not None

    def inter_arrival_times(self) -> np.ndarray:
        """:math:`T_{intt}` between consecutive submissions.

        Returns an array of length ``len(trace) - 1``; element ``i`` is
        the gap between request ``i`` and request ``i + 1``.
        """
        return np.diff(self.timestamps)

    def device_times(self) -> np.ndarray:
        """Measured :math:`T_{sdev}` per request (requires device stamps)."""
        if not self.has_device_times:
            raise ValueError("trace has no issue/completion stamps")
        assert self.completes is not None and self.issues is not None
        return self.completes - self.issues

    def read_mask(self) -> np.ndarray:
        """Boolean mask of read requests."""
        return self.ops == int(OpType.READ)

    def write_mask(self) -> np.ndarray:
        """Boolean mask of write requests."""
        return self.ops == int(OpType.WRITE)

    def sequential_mask(self) -> np.ndarray:
        """Boolean mask marking requests that continue the previous one.

        Request ``i`` is sequential when ``lba[i] == lba[i-1] + size[i-1]``.
        The first request of a trace is never sequential — there is no
        predecessor to continue.  This matches the grouping criterion the
        inference model uses (Section III).
        """
        mask = np.zeros(len(self), dtype=bool)
        if len(self) > 1:
            mask[1:] = self.lbas[1:] == (self.lbas[:-1] + self.sizes[:-1])
        return mask

    def total_bytes(self) -> int:
        """Sum of request payloads in bytes."""
        return int(self.sizes.sum()) * SECTOR_BYTES

    def mean_request_bytes(self) -> float:
        """Average request size in bytes (0 for an empty trace)."""
        if len(self) == 0:
            return 0.0
        return float(self.sizes.mean()) * SECTOR_BYTES

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------

    def shifted(self, delta: float) -> "BlockTrace":
        """Copy with every timestamp moved by ``delta`` microseconds."""
        return BlockTrace(
            timestamps=self.timestamps + delta,
            lbas=self.lbas,
            sizes=self.sizes,
            ops=self.ops,
            issues=None if self.issues is None else self.issues + delta,
            completes=None if self.completes is None else self.completes + delta,
            syncs=self.syncs,
            name=self.name,
            metadata=dict(self.metadata),
        )

    def rebased(self) -> "BlockTrace":
        """Copy whose first submission happens at time 0."""
        if len(self) == 0:
            return self.select(slice(None))
        return self.shifted(-float(self.timestamps[0]))

    def with_timestamps(self, timestamps: np.ndarray) -> "BlockTrace":
        """Copy with replaced submit times (same requests, new schedule).

        Used by every reconstruction method: the request pattern is
        preserved while the timing is re-mastered.  Issue/completion
        stamps are dropped because they describe the *old* device.
        """
        return BlockTrace(
            timestamps=np.asarray(timestamps, dtype=np.float64),
            lbas=self.lbas,
            sizes=self.sizes,
            ops=self.ops,
            syncs=self.syncs,
            name=self.name,
            metadata=dict(self.metadata),
        )

    def concat(self, other: "BlockTrace") -> "BlockTrace":
        """Concatenate ``other`` after this trace.

        ``other``'s first timestamp must not precede this trace's last.
        Device-time and sync columns survive only when both sides have
        them.
        """
        return BlockTrace.concat_all([self, other])

    @staticmethod
    def concat_all(pieces: "Sequence[BlockTrace]") -> "BlockTrace":
        """Concatenate time-ordered pieces in one pass.

        Equivalent to folding :meth:`concat` pairwise, but each column
        is assembled with a single ``np.concatenate`` — linear in the
        total length instead of quadratic, which matters when a
        streaming reader delivers a large trace as many chunks.
        Optional columns survive only when *every* piece carries them;
        name/metadata come from the first piece.
        """
        if not pieces:
            raise ValueError("nothing to concatenate")
        if len(pieces) == 1:
            return pieces[0].select(slice(None))
        for earlier, later in zip(pieces, pieces[1:]):
            if len(earlier) and len(later) and later.timestamps[0] < earlier.timestamps[-1]:
                raise ValueError("traces overlap in time; shift the later trace first")
        all_dev = all(p.has_device_times for p in pieces)
        all_sync = all(p.has_sync_flags for p in pieces)
        first = pieces[0]
        return BlockTrace(
            timestamps=np.concatenate([p.timestamps for p in pieces]),
            lbas=np.concatenate([p.lbas for p in pieces]),
            sizes=np.concatenate([p.sizes for p in pieces]),
            ops=np.concatenate([p.ops for p in pieces]),
            issues=np.concatenate([p.issues for p in pieces]) if all_dev else None,
            completes=np.concatenate([p.completes for p in pieces]) if all_dev else None,
            syncs=np.concatenate([p.syncs for p in pieces]) if all_sync else None,
            name=first.name,
            metadata=dict(first.metadata),
        )

    def drop_device_times(self) -> "BlockTrace":
        """Copy without issue/completion stamps (an "FIU-style" trace)."""
        return BlockTrace(
            timestamps=self.timestamps,
            lbas=self.lbas,
            sizes=self.sizes,
            ops=self.ops,
            syncs=self.syncs,
            name=self.name,
            metadata=dict(self.metadata),
        )

    def drop_sync_flags(self) -> "BlockTrace":
        """Copy without ground-truth sync flags (as real traces are)."""
        return BlockTrace(
            timestamps=self.timestamps,
            lbas=self.lbas,
            sizes=self.sizes,
            ops=self.ops,
            issues=self.issues,
            completes=self.completes,
            name=self.name,
            metadata=dict(self.metadata),
        )


class TraceBuilder:
    """Incremental trace construction with O(1) amortised appends.

    Collectors (the simulated ``blktrace``) and parsers append rows one
    at a time; :meth:`build` produces the immutable columnar trace.
    """

    def __init__(self, name: str = "", metadata: dict[str, Any] | None = None) -> None:
        self._timestamps: list[float] = []
        self._lbas: list[int] = []
        self._sizes: list[int] = []
        self._ops: list[int] = []
        self._issues: list[float] = []
        self._completes: list[float] = []
        self._syncs: list[bool] = []
        self._name = name
        self._metadata = dict(metadata or {})

    def __len__(self) -> int:
        return len(self._timestamps)

    def append(
        self,
        timestamp: float,
        lba: int,
        size: int,
        op: OpType | int,
        issue: float | None = None,
        complete: float | None = None,
        sync: bool | None = None,
    ) -> None:
        """Append one request.

        Device stamps and sync flags must be used consistently: either
        every appended row carries them or none does.
        """
        if self._timestamps and (issue is None) != (not self._issues):
            raise ValueError("inconsistent use of issue/completion stamps")
        if self._timestamps and (sync is None) != (not self._syncs):
            raise ValueError("inconsistent use of sync flags")
        self._timestamps.append(float(timestamp))
        self._lbas.append(int(lba))
        self._sizes.append(int(size))
        self._ops.append(int(op))
        if issue is not None:
            if complete is None:
                raise ValueError("issue stamp given without completion stamp")
            self._issues.append(float(issue))
            self._completes.append(float(complete))
        if sync is not None:
            self._syncs.append(bool(sync))

    def append_record(self, record: IORecord) -> None:
        """Append an :class:`IORecord` row."""
        self.append(
            record.timestamp,
            record.lba,
            record.size,
            record.op,
            issue=record.issue,
            complete=record.complete,
            sync=record.sync,
        )

    def build(self, sort: bool = False) -> BlockTrace:
        """Produce the immutable trace.

        With ``sort=True`` rows are stably ordered by timestamp first,
        which parsers need because some raw traces interleave hosts.
        """
        ts = np.asarray(self._timestamps, dtype=np.float64)
        order: np.ndarray | slice
        if sort and len(ts):
            order = np.argsort(ts, kind="stable")
        else:
            order = slice(None)
        has_dev = bool(self._issues)
        has_sync = bool(self._syncs)
        return BlockTrace(
            timestamps=ts[order],
            lbas=np.asarray(self._lbas, dtype=np.int64)[order],
            sizes=np.asarray(self._sizes, dtype=np.int64)[order],
            ops=np.asarray(self._ops, dtype=np.int8)[order],
            issues=np.asarray(self._issues, dtype=np.float64)[order] if has_dev else None,
            completes=np.asarray(self._completes, dtype=np.float64)[order] if has_dev else None,
            syncs=np.asarray(self._syncs, dtype=bool)[order] if has_sync else None,
            name=self._name,
            metadata=self._metadata,
        )
