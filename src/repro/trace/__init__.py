"""Block trace substrate: records, containers, parsers, writers, statistics.

This package is the data layer everything else builds on.  A trace is a
columnar, timestamp-ordered sequence of block requests; see
:class:`~repro.trace.trace.BlockTrace`.
"""

from .filters import (
    filter_ops,
    filter_sizes,
    lba_range,
    merge_traces,
    split_windows,
    subsample,
    time_window,
)
from .intervals import (
    AccessPatternSummary,
    inter_arrival_times,
    interval_after_mask,
    read_fraction,
    sequentiality_fraction,
    summarize_pattern,
)
from .io import (
    TraceReader,
    TraceStore,
    TraceStoreError,
    TraceStreamError,
    load_trace_bulk,
    load_trace_npz,
    parse_fiu_bulk,
    parse_internal_bulk,
    parse_msps_bulk,
    parse_msrc_bulk,
    save_trace_npz,
)
from .parsers import (
    ParseError,
    TraceParseError,
    load_trace,
    parse_fiu,
    parse_internal,
    parse_msps,
    parse_msrc,
)
from .record import SECTOR_BYTES, IORecord, OpType
from .stats import TraceStatistics, WorkloadRow, trace_statistics, workload_table
from .trace import BlockTrace, TraceBuilder
from .writers import dump_trace, write_blktrace_text, write_csv, write_msrc

__all__ = [
    "SECTOR_BYTES",
    "filter_ops",
    "filter_sizes",
    "lba_range",
    "merge_traces",
    "split_windows",
    "subsample",
    "time_window",
    "IORecord",
    "OpType",
    "BlockTrace",
    "TraceBuilder",
    "AccessPatternSummary",
    "inter_arrival_times",
    "interval_after_mask",
    "read_fraction",
    "sequentiality_fraction",
    "summarize_pattern",
    "ParseError",
    "TraceParseError",
    "load_trace",
    "parse_fiu",
    "parse_internal",
    "parse_msps",
    "parse_msrc",
    "TraceReader",
    "TraceStore",
    "TraceStoreError",
    "TraceStreamError",
    "load_trace_bulk",
    "load_trace_npz",
    "parse_fiu_bulk",
    "parse_internal_bulk",
    "parse_msps_bulk",
    "parse_msrc_bulk",
    "save_trace_npz",
    "TraceStatistics",
    "WorkloadRow",
    "trace_statistics",
    "workload_table",
    "dump_trace",
    "write_blktrace_text",
    "write_csv",
    "write_msrc",
]
