"""Block trace substrate: records, containers, parsers, writers, statistics.

This package is the data layer everything else builds on.  A trace is a
columnar, timestamp-ordered sequence of block requests; see
:class:`~repro.trace.trace.BlockTrace`.
"""

from .filters import (
    filter_ops,
    filter_sizes,
    lba_range,
    merge_traces,
    split_windows,
    subsample,
    time_window,
)
from .intervals import (
    AccessPatternSummary,
    inter_arrival_times,
    interval_after_mask,
    read_fraction,
    sequentiality_fraction,
    summarize_pattern,
)
from .parsers import (
    TraceParseError,
    load_trace,
    parse_fiu,
    parse_internal,
    parse_msps,
    parse_msrc,
)
from .record import SECTOR_BYTES, IORecord, OpType
from .stats import TraceStatistics, WorkloadRow, trace_statistics, workload_table
from .trace import BlockTrace, TraceBuilder
from .writers import dump_trace, write_blktrace_text, write_csv, write_msrc

__all__ = [
    "SECTOR_BYTES",
    "filter_ops",
    "filter_sizes",
    "lba_range",
    "merge_traces",
    "split_windows",
    "subsample",
    "time_window",
    "IORecord",
    "OpType",
    "BlockTrace",
    "TraceBuilder",
    "AccessPatternSummary",
    "inter_arrival_times",
    "interval_after_mask",
    "read_fraction",
    "sequentiality_fraction",
    "summarize_pattern",
    "TraceParseError",
    "load_trace",
    "parse_fiu",
    "parse_internal",
    "parse_msps",
    "parse_msrc",
    "TraceStatistics",
    "WorkloadRow",
    "trace_statistics",
    "workload_table",
    "dump_trace",
    "write_blktrace_text",
    "write_csv",
    "write_msrc",
]
