"""Chunked trace reading: stream a file as BlockTrace segments.

:class:`TraceReader` turns a trace file — any text dialect, or a
binary store ``.npz`` — into an iterator of
:class:`~repro.trace.trace.BlockTrace` chunks of at most
``chunk_requests`` rows, so traces larger than memory can stream
through parse → filter → infer → replay without full materialisation.

Chunked and whole-file reads agree exactly: concatenating the yielded
chunks reproduces ``load_trace(path, fmt)`` column-for-column.  That
parity needs the file to be *chunk-sorted* — rows may be out of order
within a chunk (each chunk is stably sorted, exactly as the whole-file
parsers sort), but a later chunk must not start before an earlier one
ended, because a streaming reader cannot sort across segments it has
already emitted.  Files that violate this raise
:class:`TraceStreamError`; real trace collections are written in
submission order and stream fine.

Dialects that rebase (MSRC/FIU/MSPS) are rebased against the *first*
chunk's start, so later chunks keep their absolute placement on the
stream's timeline.

``tail=True`` hardens the reader against a file that is still being
written: only newline-terminated lines are parsed, so a torn partial
line at the current end of file is *held back* rather than raised on
or — worse — silently parsed into a wrong row.  See
:func:`iter_complete_lines`.
"""

from __future__ import annotations

from collections.abc import Iterator
from pathlib import Path
from typing import IO

from ..trace import BlockTrace
from .bulk import BULK_PARSERS

__all__ = ["TraceReader", "TraceStreamError", "iter_complete_lines"]

#: Text dialects whose whole-file parsers rebase to a 0 start.
_REBASED_FORMATS = frozenset({"msrc", "fiu", "msps"})

#: Read granularity for the complete-line iterator.
_READ_BLOCK = 1 << 16


class TraceStreamError(ValueError):
    """A trace file cannot be streamed in chunks (out-of-order segments)."""


def iter_complete_lines(handle: IO[str]) -> Iterator[str]:
    """Yield only newline-terminated lines from ``handle``.

    The tail-safe line discipline: a trailing fragment with no newline
    is held back, never yielded, because a concurrently-appending
    writer may be mid-write — emitting the torn prefix would either
    fail to parse or, worse, parse *successfully* into a wrong row
    (``"123456.000,80"`` is a valid prefix of ``"123456.000,8000,…"``).
    If the writer completes the line while this pass is still reading,
    the whole line is delivered exactly once; a fragment still torn at
    end of file is left for the next pass (the streaming service's
    sources re-poll from a byte cursor for exactly this reason).

    Yielded lines carry no trailing newline.
    """
    pending = ""
    while True:
        block = handle.read(_READ_BLOCK)
        if not block:
            return
        pending += block
        if "\n" not in pending:
            continue
        complete, pending = pending.rsplit("\n", 1)
        yield from complete.split("\n")


class TraceReader:
    """Iterate a trace file as bounded-size :class:`BlockTrace` chunks.

    Parameters
    ----------
    path:
        Trace file: a text dialect or a binary-store ``.npz``.
    fmt:
        ``"msrc"``, ``"fiu"``, ``"msps"``, ``"internal"``, or ``"npz"``.
    name:
        Workload name; defaults to the file stem.
    chunk_requests:
        Maximum rows per yielded chunk (the streaming pipeline's
        working-set knob).
    tail:
        Treat the file as possibly still being written: parse only
        newline-terminated lines, holding a torn trailing fragment
        back instead of raising on it or parsing it into a wrong row.
        Growth that lands while the read is in progress is picked up;
        a fragment still torn at end of file is simply not part of
        this pass.  The default (``False``) keeps the whole-file
        contract where a final unterminated line is a complete record.

    Iterating yields non-overlapping chunks in time order; ``read()``
    concatenates them into the same trace a whole-file load produces.
    """

    def __init__(
        self,
        path: str | Path,
        fmt: str = "internal",
        name: str | None = None,
        chunk_requests: int = 100_000,
        tail: bool = False,
    ) -> None:
        if fmt != "npz" and fmt not in BULK_PARSERS:
            raise ValueError(
                f"unknown trace format {fmt!r}; choose from {sorted(BULK_PARSERS) + ['npz']}"
            )
        if chunk_requests <= 0:
            raise ValueError("chunk_requests must be positive")
        self.path = Path(path)
        self.fmt = fmt
        self.name = name if name is not None else self.path.stem
        self.chunk_requests = chunk_requests
        self.tail = tail

    def __iter__(self) -> Iterator[BlockTrace]:
        if self.fmt == "npz":
            yield from self._iter_npz()
        else:
            yield from self._iter_text()

    def read(self) -> BlockTrace:
        """Materialise the whole file (chunk-concatenation parity path)."""
        chunks = list(self)
        if not chunks:
            # Delegate the empty-file representation to the parsers so
            # whole-file and chunked reads stay indistinguishable.
            if self.fmt == "npz":
                from .store import load_trace_npz

                return load_trace_npz(self.path)
            return BULK_PARSERS[self.fmt]("", name=self.name)
        return BlockTrace.concat_all(chunks)

    # -- npz -----------------------------------------------------------

    def _iter_npz(self) -> Iterator[BlockTrace]:
        from .store import load_trace_npz

        trace = load_trace_npz(self.path, mmap=True)
        for start in range(0, len(trace), self.chunk_requests):
            yield trace.select(slice(start, start + self.chunk_requests))

    # -- text dialects -------------------------------------------------

    def _iter_text(self) -> Iterator[BlockTrace]:
        parse = BULK_PARSERS[self.fmt]
        rebase = self.fmt in _REBASED_FORMATS
        offset: float | None = None
        previous_end: float | None = None
        chunk_index = 0
        with self.path.open("r", encoding="utf-8") as handle:
            raw_lines: Iterator[str] = iter_complete_lines(handle) if self.tail else iter(handle)
            header = self._read_internal_header(raw_lines) if self.fmt == "internal" else None
            while True:
                lines = self._next_chunk_lines(raw_lines)
                if not lines:
                    break
                body = "\n".join(lines)
                if header is not None:
                    body = header + "\n" + body
                chunk = parse(body, name=self.name, rebase=False)
                if len(chunk) == 0:
                    continue
                if rebase:
                    if offset is None:
                        offset = float(chunk.timestamps[0])
                    chunk = chunk.shifted(-offset)
                first = float(chunk.timestamps[0])
                if previous_end is not None and first < previous_end:
                    raise TraceStreamError(
                        f"{self.path}: chunk {chunk_index} starts at {first:.3f}us, "
                        f"before the previous chunk ended ({previous_end:.3f}us); "
                        "chunked reading requires time-sorted input — "
                        "load the whole file instead"
                    )
                previous_end = float(chunk.timestamps[-1])
                chunk_index += 1
                yield chunk

    @staticmethod
    def _read_internal_header(raw_lines: Iterator[str]) -> str:
        """Consume lines up to and including the internal CSV header."""
        for raw in raw_lines:
            line = raw.strip()
            if line and not line.startswith("#"):
                return line
        return ""

    def _next_chunk_lines(self, raw_lines: Iterator[str]) -> list[str]:
        """Up to ``chunk_requests`` content lines (comments/blanks dropped)."""
        lines: list[str] = []
        for raw in raw_lines:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            lines.append(line)
            if len(lines) >= self.chunk_requests:
                break
        return lines
