"""Bulk vectorised parsers for the supported trace dialects.

Each ``parse_*_bulk`` function accepts the same inputs as its
line-by-line counterpart in :mod:`repro.trace.parsers` (an iterable of
lines, an open text file, or — additionally — one whole ``str``) and
produces a column-identical :class:`~repro.trace.trace.BlockTrace`.

The fast path hands the entire file body to ``np.loadtxt`` with a
structured dtype, so tokenising and numeric conversion happen in
NumPy's C reader rather than per-line Python.  Operation-type columns
are decoded through ``np.unique`` — a handful of distinct spellings are
mapped once via :meth:`~repro.trace.record.OpType.from_str` and
broadcast back.

Error handling keeps the oracle's contract without slowing the fast
path: whenever the vectorised parse trips over anything — a malformed
row, an unknown operation spelling, a non-positive size — the input is
re-parsed with the line-by-line oracle, which either succeeds (an
exotic-but-valid file simply takes the slow path) or raises a
:class:`~repro.trace.parsers.TraceParseError` carrying the exact
1-based line number and offending text.

One deliberate divergence: like ``np.loadtxt``, the bulk parsers treat
``#`` as starting a comment *anywhere* in a line, while the oracle only
skips lines that begin with ``#``.  Trace bodies are numeric, so this
matters only for hand-annotated files.
"""

from __future__ import annotations

import io
import warnings
from collections.abc import Iterable
from pathlib import Path
from typing import Callable

import numpy as np

from ..record import SECTOR_BYTES, OpType
from ..trace import BlockTrace

__all__ = [
    "parse_msrc_bulk",
    "parse_fiu_bulk",
    "parse_msps_bulk",
    "parse_internal_bulk",
    "load_trace_bulk",
    "BULK_PARSERS",
]

#: Windows filetime tick length in microseconds (100 ns).
_FILETIME_TICK_US = 0.1

#: Column dtypes for the internal CSV header names.  Unknown columns
#: parse as (ignored) strings so extra provenance columns don't break
#: the fast path.
_INTERNAL_COLUMN_DTYPES = {
    "timestamp_us": "f8",
    "lba": "i8",
    "size_sectors": "i8",
    "op": "U8",
    "issue_us": "f8",
    "complete_us": "f8",
    "sync": "U4",
}


def _as_text(lines: Iterable[str] | str) -> str:
    """Collapse any accepted input into one newline-normalised string."""
    if isinstance(lines, str):
        text = lines
    elif hasattr(lines, "read"):
        text = lines.read()  # type: ignore[union-attr]
    else:
        return "\n".join(line.rstrip("\r\n") for line in lines)
    # The membership scan is ~10x cheaper than an unconditional replace.
    return text.replace("\r\n", "\n") if "\r" in text else text


def _loadtxt(body: str | io.StringIO, dtype: np.dtype, **kwargs) -> np.ndarray:
    """``np.loadtxt`` wrapper: empty input returns an empty record array.

    Accepts a pre-positioned ``StringIO`` so callers that already hold
    the whole text (e.g. after locating a header) avoid re-copying it.
    """
    handle = io.StringIO(body) if isinstance(body, str) else body
    with warnings.catch_warnings():
        # Empty files are legal traces, not a user mistake.
        warnings.filterwarnings("ignore", message=".*input contained no data.*")
        arr = np.loadtxt(handle, dtype=dtype, comments="#", ndmin=1, **kwargs)
    if arr.size and arr.dtype != dtype:  # scalar fallback shapes
        arr = arr.astype(dtype)
    return arr


def _decode_distinct(
    column: np.ndarray, convert: Callable[[str], int], max_distinct: int = 16
) -> np.ndarray:
    """Decode a categorical string column by its distinct values.

    One vectorised comparison per *distinct* spelling — real trace
    files carry one or two — which beats ``np.unique`` (a full string
    sort) by an order of magnitude.  ``convert`` validates each
    spelling; an unknown one raises and sends the caller to the
    oracle fallback.
    """
    out = np.empty(len(column), dtype=np.int8)
    # First spelling handled copy-free (it usually covers most rows).
    first = column[0]
    match = column == first
    out[match] = convert(str(first))
    remaining = np.flatnonzero(~match)
    for _ in range(max_distinct):
        if remaining.size == 0:
            return out
        token = column[remaining[0]]
        value = convert(str(token))
        match = column[remaining] == token
        out[remaining[match]] = value
        remaining = remaining[~match]
    raise ValueError("too many distinct spellings in categorical column")


def _decode_ops(op_column: np.ndarray) -> np.ndarray:
    """Vectorised OpType decode (validated via ``OpType.from_str``)."""
    return _decode_distinct(op_column, lambda t: int(OpType.from_str(t)))

def _stable_order(timestamps: np.ndarray) -> np.ndarray | slice:
    """Stable sort permutation, or a no-copy slice when already sorted."""
    if timestamps.size > 1 and np.any(timestamps[1:] < timestamps[:-1]):
        return np.argsort(timestamps, kind="stable")
    return slice(None)


def _with_fallback(
    fast: Callable[[str, str, bool], BlockTrace],
    lines: Iterable[str] | str,
    name: str,
    rebase: bool,
    oracle: Callable[..., BlockTrace],
) -> BlockTrace:
    """Run the vectorised parse; on input trouble, defer to the oracle.

    The oracle pass either parses the exotic-but-valid input correctly
    (slow path) or raises a ``TraceParseError`` locating the bad row.
    Only *data-shaped* exceptions trigger the fallback — a programming
    error in the fast path (``TypeError``, ``AttributeError``, ...)
    must surface, not silently demote every parse to the slow path.
    """
    text = _as_text(lines)
    try:
        return fast(text, name, rebase)
    except (ValueError, KeyError, IndexError, OverflowError):
        return oracle(text.split("\n"), name=name, rebase=rebase)


def _empty_like_oracle(name: str, metadata: dict) -> BlockTrace:
    """What the oracle returns for a file with no content rows."""
    return BlockTrace([], [], [], [], name=name, metadata=metadata)


# ----------------------------------------------------------------------
# MSRC
# ----------------------------------------------------------------------

_MSRC_DTYPE = np.dtype(
    [("ticks", "i8"), ("op", "U8"), ("offset", "i8"), ("size", "i8"), ("response", "i8")]
)


def _parse_msrc_fast(text: str, name: str, rebase: bool) -> BlockTrace:
    metadata = {"format": "msrc", "category": "MSRC"}
    arr = _loadtxt(text, _MSRC_DTYPE, delimiter=",", usecols=(0, 3, 4, 5, 6))
    if arr.size == 0:
        return _empty_like_oracle(name, metadata)
    if np.any(arr["size"] <= 0):
        raise ValueError("non-positive request size")  # oracle locates the row
    ops = _decode_ops(arr["op"])
    submits = arr["ticks"] * _FILETIME_TICK_US
    order = _stable_order(submits)
    arr = arr[order]
    ops = ops[order]
    submits = submits[order]
    trace = BlockTrace(
        timestamps=submits,
        lbas=arr["offset"] // SECTOR_BYTES,
        sizes=np.maximum(1, (arr["size"] + SECTOR_BYTES - 1) // SECTOR_BYTES),
        ops=ops,
        issues=submits.copy(),
        completes=submits + arr["response"] * _FILETIME_TICK_US,
        name=name,
        metadata=metadata,
    )
    return trace.rebased() if rebase else trace


def parse_msrc_bulk(
    lines: Iterable[str] | str, name: str = "msrc", rebase: bool = True
) -> BlockTrace:
    """Vectorised :func:`~repro.trace.parsers.parse_msrc`."""
    from ..parsers import parse_msrc

    return _with_fallback(_parse_msrc_fast, lines, name, rebase, parse_msrc)


# ----------------------------------------------------------------------
# FIU
# ----------------------------------------------------------------------

_FIU_DTYPE = np.dtype([("ts", "f8"), ("lba", "i8"), ("size", "i8"), ("op", "U8")])


def _parse_fiu_fast(text: str, name: str, rebase: bool) -> BlockTrace:
    metadata = {"format": "fiu", "category": "FIU"}
    arr = _loadtxt(text, _FIU_DTYPE, usecols=(0, 3, 4, 5))
    if arr.size == 0:
        return _empty_like_oracle(name, metadata)
    if np.any(arr["size"] <= 0):
        raise ValueError("non-positive request size")
    ops = _decode_ops(arr["op"])
    submits = arr["ts"] * 1e6
    order = _stable_order(submits)
    trace = BlockTrace(
        timestamps=submits[order],
        lbas=arr["lba"][order],
        sizes=arr["size"][order],
        ops=ops[order],
        name=name,
        metadata=metadata,
    )
    return trace.rebased() if rebase else trace


def parse_fiu_bulk(
    lines: Iterable[str] | str, name: str = "fiu", rebase: bool = True
) -> BlockTrace:
    """Vectorised :func:`~repro.trace.parsers.parse_fiu`."""
    from ..parsers import parse_fiu

    return _with_fallback(_parse_fiu_fast, lines, name, rebase, parse_fiu)


# ----------------------------------------------------------------------
# MSPS
# ----------------------------------------------------------------------

_MSPS_DTYPE = np.dtype(
    [("issue", "f8"), ("complete", "f8"), ("op", "U8"), ("lba", "i8"), ("size", "i8")]
)


def _parse_msps_fast(text: str, name: str, rebase: bool) -> BlockTrace:
    metadata = {"format": "msps", "category": "MSPS"}
    arr = _loadtxt(text, _MSPS_DTYPE, usecols=(0, 1, 2, 3, 4))
    if arr.size == 0:
        return _empty_like_oracle(name, metadata)
    if np.any(arr["complete"] < arr["issue"]) or np.any(arr["size"] <= 0):
        raise ValueError("bad row")  # oracle locates and describes it
    ops = _decode_ops(arr["op"])
    order = _stable_order(arr["issue"])
    arr = arr[order]
    trace = BlockTrace(
        timestamps=arr["issue"],
        lbas=arr["lba"],
        sizes=arr["size"],
        ops=ops[order],
        issues=arr["issue"].copy(),
        completes=arr["complete"],
        name=name,
        metadata=metadata,
    )
    return trace.rebased() if rebase else trace


def parse_msps_bulk(
    lines: Iterable[str] | str, name: str = "msps", rebase: bool = True
) -> BlockTrace:
    """Vectorised :func:`~repro.trace.parsers.parse_msps`."""
    from ..parsers import parse_msps

    return _with_fallback(_parse_msps_fast, lines, name, rebase, parse_msps)


# ----------------------------------------------------------------------
# internal CSV
# ----------------------------------------------------------------------


def _parse_internal_fast(text: str, name: str, rebase: bool) -> BlockTrace:
    del rebase  # the internal dialect is stored already rebased
    header, body_offset = _split_internal_header(text)
    if header is None:
        return BlockTrace([], [], [], [], name=name)
    columns = [c.strip() for c in header.split(",")]
    required = ["timestamp_us", "lba", "size_sectors", "op"]
    if columns[: len(required)] != required:
        raise ValueError("bad header")  # oracle raises the precise error
    dtype = np.dtype(
        [(c, _INTERNAL_COLUMN_DTYPES.get(c, "U16")) for c in columns]
    )
    body = io.StringIO(text)
    body.seek(body_offset)
    arr = _loadtxt(body, dtype, delimiter=",")
    if arr.size == 0:
        return BlockTrace([], [], [], [], name=name, metadata={"format": "internal"})
    if np.any(arr["size_sectors"] <= 0):
        raise ValueError("non-positive request size")
    ops = _decode_ops(arr["op"])
    has_dev = "issue_us" in columns
    if has_dev and "complete_us" not in columns:
        raise ValueError("issue_us without complete_us")
    has_sync = "sync" in columns
    order = _stable_order(arr["timestamp_us"])
    arr = arr[order]
    syncs = None
    if has_sync:
        syncs = _decode_distinct(arr["sync"], lambda t: int(t.strip() == "1")).astype(bool)
    return BlockTrace(
        timestamps=arr["timestamp_us"],
        lbas=arr["lba"],
        sizes=arr["size_sectors"],
        ops=ops[order],
        issues=arr["issue_us"] if has_dev else None,
        completes=arr["complete_us"] if has_dev else None,
        syncs=syncs,
        name=name,
        metadata={"format": "internal"},
    )


def _split_internal_header(text: str) -> tuple[str | None, int]:
    """Header line (first non-blank, non-comment) and the body's offset."""
    offset = 0
    while offset < len(text):
        end = text.find("\n", offset)
        if end == -1:
            end = len(text)
        line = text[offset:end].strip()
        if line and not line.startswith("#"):
            return line, end + 1
        offset = end + 1
    return None, len(text)


def parse_internal_bulk(
    lines: Iterable[str] | str, name: str = "", rebase: bool = True
) -> BlockTrace:
    """Vectorised :func:`~repro.trace.parsers.parse_internal`."""
    from ..parsers import parse_internal

    # parse_internal never rebases; the parameter exists for signature
    # parity with the other dialects (the streaming reader passes it).
    def oracle(lines: Iterable[str], name: str, rebase: bool) -> BlockTrace:
        del rebase
        return parse_internal(lines, name=name)

    return _with_fallback(_parse_internal_fast, lines, name, True, oracle)


#: Bulk parser per dialect name.
BULK_PARSERS: dict[str, Callable[..., BlockTrace]] = {
    "msrc": parse_msrc_bulk,
    "fiu": parse_fiu_bulk,
    "msps": parse_msps_bulk,
    "internal": parse_internal_bulk,
}


def load_trace_bulk(path: str | Path, fmt: str = "internal", name: str | None = None) -> BlockTrace:
    """Load a text-dialect trace file through the vectorised parsers."""
    if fmt not in BULK_PARSERS:
        raise ValueError(f"unknown trace format {fmt!r}; choose from {sorted(BULK_PARSERS)}")
    p = Path(path)
    # Text mode translates universal newlines, so CRLF files cost nothing.
    text = p.read_text(encoding="utf-8")
    return BULK_PARSERS[fmt](text, name=name if name is not None else p.stem)
