"""Columnar trace I/O: bulk parsers, binary store, cache, streaming reader.

This package is the high-throughput counterpart to the row-wise
:mod:`repro.trace.parsers`.  Four pieces:

- :mod:`~repro.trace.io.bulk` — vectorised whole-file parsers for the
  MSRC/FIU/MSPS/internal dialects.  Same results as the line-by-line
  parsers (which remain as the correctness oracle), several times
  faster: the file is read once and split into column arrays by
  NumPy's C tokenizer instead of per-line ``str.split`` + appends.
- :mod:`~repro.trace.io.store` — a versioned ``.npz`` binary trace
  format with optional memory-mapped reads, so a parsed or generated
  trace is materialised to columns once and loaded back without any
  text processing.
- :mod:`~repro.trace.io.cache` — :class:`TraceStore`, a content-keyed
  on-disk cache of binary traces (the 31-workload catalog and parsed
  public traces are built once per content key).
- :mod:`~repro.trace.io.reader` — :class:`TraceReader`, a chunked
  reader that yields :class:`~repro.trace.trace.BlockTrace` segments
  so traces larger than memory stream through
  parse → filter → infer → replay without full materialisation.
- :mod:`~repro.trace.io.fingerprint` — the shared content-identity
  helpers: the blake2b column digest (inference memo keys) and the
  file SHA-256 the result lake catalogs artifacts under.
"""

from .bulk import (
    BULK_PARSERS,
    load_trace_bulk,
    parse_fiu_bulk,
    parse_internal_bulk,
    parse_msps_bulk,
    parse_msrc_bulk,
)
from .cache import TraceStore, default_trace_store_dir, get_default_store, set_default_store
from .fingerprint import file_sha256, trace_digest
from .reader import TraceReader, TraceStreamError, iter_complete_lines
from .store import (
    STORE_FORMAT_VERSION,
    TraceStoreError,
    load_trace_npz,
    save_trace_npz,
)

__all__ = [
    "BULK_PARSERS",
    "load_trace_bulk",
    "parse_fiu_bulk",
    "parse_internal_bulk",
    "parse_msps_bulk",
    "parse_msrc_bulk",
    "STORE_FORMAT_VERSION",
    "TraceStoreError",
    "save_trace_npz",
    "load_trace_npz",
    "trace_digest",
    "file_sha256",
    "TraceStore",
    "default_trace_store_dir",
    "get_default_store",
    "set_default_store",
    "TraceReader",
    "TraceStreamError",
    "iter_complete_lines",
]
