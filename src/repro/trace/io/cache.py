"""Content-keyed on-disk cache of binary traces.

:class:`TraceStore` maps a *content key* — a stable description of
everything that determines a trace's bytes (workload spec parameters,
device fingerprint, collection flags, source-file digest, ...) — to a
:mod:`store <repro.trace.io.store>` ``.npz`` file.  Generated catalog
traces and parsed public traces are materialised once per key; every
later run (including every worker process of the parallel experiment
runner) loads columns straight from disk instead of re-deriving them.

Keys are hashed with SHA-1 and prefixed with the binary
:data:`~repro.trace.io.store.STORE_FORMAT_VERSION`, so bumping the
format version orphans (and therefore invalidates) every existing
entry.  Corrupt or stale entries are treated as misses and rebuilt.
"""

from __future__ import annotations

import hashlib
import os
from collections.abc import Callable
from pathlib import Path

from ..trace import BlockTrace
from .store import STORE_FORMAT_VERSION, TraceStoreError, load_trace_npz, save_trace_npz

__all__ = ["TraceStore", "default_trace_store_dir", "get_default_store", "set_default_store"]

#: Environment overrides: the store directory, a master off switch
#: ("0"/"false"/"no" disable the default store, e.g. for bit-repro
#: runs), and the result-lake catalog new entries register into.
_ENV_DIR = "REPRO_TRACE_STORE_DIR"
_ENV_ENABLED = "REPRO_TRACE_STORE"
_ENV_LAKE = "REPRO_LAKE_DB"


def default_trace_store_dir() -> Path:
    """``$REPRO_TRACE_STORE_DIR`` or ``~/.cache/repro-tracetracker/traces``."""
    env = os.environ.get(_ENV_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-tracetracker" / "traces"


class TraceStore:
    """A directory of content-keyed binary traces.

    Parameters
    ----------
    root:
        Cache directory (created lazily); defaults to
        :func:`default_trace_store_dir`.
    enabled:
        A disabled store never touches disk: :meth:`load` always
        misses and :meth:`get_or_build` always builds.  This keeps one
        code path for cached and cache-free runs.
    mmap:
        Memory-map loads (the default) — cheap for the many-workers
        case where every process reads the same catalog traces.
    lake:
        Optional result-lake catalog database path.  When set, every
        entry the store *materialises* (a build miss) is registered in
        the lake with its workload feature vector, making it findable
        via ``repro-lake similar``/``query``.  Registration is
        best-effort: a broken lake never fails the build.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        enabled: bool = True,
        mmap: bool = True,
        lake: str | Path | None = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_trace_store_dir()
        self.enabled = enabled
        self.mmap = mmap
        self.lake = Path(lake) if lake is not None else None
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return f"TraceStore({self.root}, {state}, hits={self.hits}, misses={self.misses})"

    # -- keys ----------------------------------------------------------

    @staticmethod
    def key_for(*parts: str) -> str:
        """Stable content key from descriptive parts (order-sensitive)."""
        digest = hashlib.sha1("\x1f".join(parts).encode("utf-8")).hexdigest()
        return digest

    def path_for(self, key: str) -> Path:
        """On-disk location of a key's entry (version-prefixed)."""
        return self.root / f"v{STORE_FORMAT_VERSION}-{key}.npz"

    # -- access --------------------------------------------------------

    def load(self, key: str) -> BlockTrace | None:
        """The stored trace for ``key``, or ``None`` on a miss.

        Corrupt and wrong-version entries count as misses; the caller
        rebuilds and overwrites them.  A corrupt (truncated, torn)
        entry is additionally quarantined to ``<entry>.bad`` with a
        logged warning, so the broken bytes cannot shadow the rebuilt
        entry and the evidence survives for diagnosis.
        """
        if not self.enabled:
            return None
        path = self.path_for(key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            trace = load_trace_npz(path, mmap=self.mmap)
        except TraceStoreError as exc:
            self._quarantine(path, exc)
            self.misses += 1
            return None
        self.hits += 1
        return trace

    @staticmethod
    def _quarantine(path: Path, exc: Exception) -> None:
        """Move a corrupt entry aside (best-effort) and warn about it."""
        import logging

        bad = path.with_name(path.name + ".bad")
        try:
            os.replace(path, bad)
        except OSError:
            bad = None  # type: ignore[assignment]
        logging.getLogger(__name__).warning(
            "corrupt trace store entry %s (%s); %s — rebuilding from source",
            path.name,
            exc,
            f"quarantined to {bad.name}" if bad is not None else "could not quarantine",
        )

    def save(self, key: str, trace: BlockTrace) -> None:
        """Best-effort store of ``trace`` under ``key``.

        A full disk or read-only cache directory must never fail the
        run that computed the trace.
        """
        if not self.enabled:
            return
        try:
            save_trace_npz(trace, self.path_for(key))
        except OSError:
            pass

    def get_or_build(self, key: str, build: Callable[[], BlockTrace]) -> BlockTrace:
        """Return the cached trace for ``key``, building and storing on miss.

        Either way the returned trace is stamped with the content key
        (``content_fingerprint``), so downstream memo layers (the
        inference-model cache) can key on the stamp instead of
        re-hashing the columns.  The stamp is valid even for a disabled
        store: the key describes everything that determined the build.
        """
        trace = self.load(key)
        if trace is None:
            trace = build()
            self.save(key, trace)
            self._register_in_lake(key, trace)
        trace.content_fingerprint = f"store:{key}"
        return trace

    def _register_in_lake(self, key: str, trace: BlockTrace) -> None:
        """Best-effort lake registration of a freshly materialised entry.

        Mirrors what ``repro-lake ingest`` derives from the same file
        (content fingerprint, feature vector, ``store:<key>`` ref), so
        live registration and a rescan converge on identical rows.
        """
        if self.lake is None or not self.enabled:
            return
        path = self.path_for(key)
        if not path.exists():
            return
        import sqlite3

        from ...lake.catalog import LakeCatalog, LakeError

        try:
            with LakeCatalog(self.lake) as catalog:
                catalog.record_trace(path, trace, ref=f"store:{key}")
        except (LakeError, sqlite3.Error, OSError):
            pass


#: Lazily constructed process-wide store (worker processes inherit the
#: configuration through the environment variables above).
_DEFAULT_STORE: TraceStore | None = None


def get_default_store() -> TraceStore:
    """The process-wide default store.

    Enabled only when ``$REPRO_TRACE_STORE_DIR`` points somewhere or
    ``$REPRO_TRACE_STORE`` is truthy — so library users and the test
    suite see no hidden disk traffic unless they opt in.  When
    ``$REPRO_LAKE_DB`` is also set, materialised entries register into
    that result-lake catalog.
    """
    global _DEFAULT_STORE
    if _DEFAULT_STORE is None:
        flag = os.environ.get(_ENV_ENABLED, "").strip().lower()
        enabled = bool(os.environ.get(_ENV_DIR)) or flag in ("1", "true", "yes", "on")
        if flag in ("0", "false", "no", "off"):
            enabled = False
        _DEFAULT_STORE = TraceStore(enabled=enabled, lake=os.environ.get(_ENV_LAKE))
    return _DEFAULT_STORE


def set_default_store(store: TraceStore | None) -> None:
    """Replace (or with ``None``, reset) the process-wide default store."""
    global _DEFAULT_STORE
    _DEFAULT_STORE = store
