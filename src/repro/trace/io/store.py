"""Versioned binary trace store: ``.npz`` columns + JSON header.

A stored trace is one NumPy ``.npz`` archive holding the column arrays
(``timestamps``, ``lbas``, ``sizes``, ``ops`` and, when present,
``issues``/``completes``/``syncs``) plus a ``header`` JSON blob with
the store format version, trace name, and provenance metadata.

Two properties make the format fit the streaming pipeline:

- **atomic, versioned writes** — files are written to a sibling temp
  path, fsynced, and ``os.replace``d into place; the embedded
  :data:`STORE_FORMAT_VERSION` is checked on load, so a format bump
  can never silently serve stale bytes;
- **memory-mapped reads** — ``np.savez`` stores members uncompressed,
  so :func:`load_trace_npz` with ``mmap=True`` maps each column
  directly out of the zip archive (offsets are computed from the zip
  local headers).  A multi-GB trace opens in milliseconds and pages in
  lazily as the pipeline touches columns; anything unexpected in the
  archive silently falls back to a regular in-memory load.
"""

from __future__ import annotations

import json
import os
import zipfile
from pathlib import Path
from typing import Any

import numpy as np

from ..trace import BlockTrace

__all__ = ["STORE_FORMAT_VERSION", "TraceStoreError", "save_trace_npz", "load_trace_npz"]

#: Bump on any incompatible change to the stored layout.  The version is
#: embedded in every file *and* folded into every cache key, so a bump
#: invalidates existing caches and rejects stale files on direct loads.
STORE_FORMAT_VERSION = 1

_COLUMNS = ("timestamps", "lbas", "sizes", "ops")
_OPTIONAL = ("issues", "completes", "syncs")


class TraceStoreError(RuntimeError):
    """A stored trace could not be read (corrupt, wrong version, not ours)."""


def save_trace_npz(trace: BlockTrace, path: str | Path, compress: bool = False) -> Path:
    """Persist ``trace`` to ``path`` in the binary store format.

    Uncompressed by default so the file can be memory-mapped back;
    ``compress=True`` trades mmap-ability for size (cold archives).
    The write is atomic: concurrent readers see the old file or the new
    one, never a torn one.
    """
    p = Path(path)
    header = {
        "version": STORE_FORMAT_VERSION,
        "name": trace.name,
        "metadata": trace.metadata,
    }
    arrays: dict[str, np.ndarray] = {
        "header": np.frombuffer(json.dumps(header, default=str).encode("utf-8"), dtype=np.uint8),
        "timestamps": trace.timestamps,
        "lbas": trace.lbas,
        "sizes": trace.sizes,
        "ops": trace.ops,
    }
    for optional in _OPTIONAL:
        column = getattr(trace, optional)
        if column is not None:
            arrays[optional] = column
    p.parent.mkdir(parents=True, exist_ok=True)
    tmp = p.with_name(p.name + f".tmp{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            if compress:
                np.savez_compressed(handle, **arrays)
            else:
                np.savez(handle, **arrays)
            # Flush through to the disk before the rename publishes the
            # file: without the fsync a crash can replace a good entry
            # with a correctly-named but empty/truncated one, which is
            # the corruption mode the loaders then have to absorb.
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, p)
    finally:
        tmp.unlink(missing_ok=True)
    return p


def load_trace_npz(path: str | Path, mmap: bool = False) -> BlockTrace:
    """Load a trace written by :func:`save_trace_npz`.

    With ``mmap=True`` column arrays are memory-mapped read-only when
    the archive layout allows it (uncompressed members, C-contiguous
    plain dtypes — the layout :func:`save_trace_npz` produces); any
    deviation falls back to a normal load rather than failing.
    """
    p = Path(path)
    columns = _mmap_columns(p) if mmap else None
    if columns is None:
        try:
            with np.load(p, allow_pickle=False) as archive:
                columns = {key: archive[key] for key in archive.files}
        except (OSError, ValueError, zipfile.BadZipFile) as exc:
            raise TraceStoreError(f"cannot read trace store file {p}: {exc}") from exc
    return _trace_from_columns(columns, p)


def _trace_from_columns(columns: dict[str, np.ndarray], path: Path) -> BlockTrace:
    if "header" not in columns or any(c not in columns for c in _COLUMNS):
        raise TraceStoreError(f"{path} is not a trace store file (missing columns)")
    try:
        header: dict[str, Any] = json.loads(bytes(np.asarray(columns["header"])).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceStoreError(f"{path} has a corrupt header: {exc}") from exc
    version = header.get("version")
    if version != STORE_FORMAT_VERSION:
        raise TraceStoreError(
            f"{path} has store format version {version!r}; "
            f"this build reads version {STORE_FORMAT_VERSION}"
        )
    try:
        return BlockTrace(
            timestamps=columns["timestamps"],
            lbas=columns["lbas"],
            sizes=columns["sizes"],
            ops=columns["ops"],
            issues=columns.get("issues"),
            completes=columns.get("completes"),
            syncs=columns.get("syncs"),
            name=header.get("name", ""),
            metadata=header.get("metadata") or {},
        )
    except ValueError as exc:
        raise TraceStoreError(f"{path} holds inconsistent columns: {exc}") from exc


def _mmap_columns(path: Path) -> dict[str, np.ndarray] | None:
    """Memory-map every member of an uncompressed ``.npz``.

    Returns ``None`` whenever the archive deviates from the layout
    ``np.savez`` writes (compressed members, Fortran order, object
    dtypes, unexpected magic) — the caller then loads normally.
    """
    try:
        columns: dict[str, np.ndarray] = {}
        with zipfile.ZipFile(path) as archive:
            for info in archive.infolist():
                if info.compress_type != zipfile.ZIP_STORED:
                    return None
                with archive.open(info) as member:
                    version = np.lib.format.read_magic(member)
                    if version == (1, 0):
                        shape, fortran, dtype = np.lib.format.read_array_header_1_0(member)
                    elif version == (2, 0):
                        shape, fortran, dtype = np.lib.format.read_array_header_2_0(member)
                    else:
                        return None
                    if fortran or dtype.hasobject:
                        return None
                    header_bytes = member.tell()
                # The member's payload starts after the zip *local* file
                # header, whose name/extra lengths can differ from the
                # central directory's copy — read them from the file.
                with open(path, "rb") as raw:
                    raw.seek(info.header_offset)
                    local = raw.read(30)
                if len(local) < 30 or local[:4] != b"PK\x03\x04":
                    return None
                name_len = int.from_bytes(local[26:28], "little")
                extra_len = int.from_bytes(local[28:30], "little")
                offset = info.header_offset + 30 + name_len + extra_len + header_bytes
                key = info.filename.removesuffix(".npy")
                columns[key] = np.memmap(path, dtype=dtype, mode="r", shape=shape, offset=offset)
        return columns
    except (OSError, ValueError, zipfile.BadZipFile):
        return None
