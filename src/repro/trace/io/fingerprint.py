"""Content fingerprints shared by every cache and catalog layer.

Two kinds of identity live here:

- :func:`trace_digest` — a ``blake2b`` digest over a
  :class:`~repro.trace.trace.BlockTrace`'s column arrays, the identity
  the inference-model memo has always used.  Traces materialised
  through the binary trace store carry a ``content_fingerprint`` stamp
  that already uniquely determines every column; the digest reuses the
  stamp and skips hashing entirely.
- :func:`file_sha256` — a streaming SHA-256 over a file's bytes, the
  content address the result lake catalogs artifacts under
  (:mod:`repro.lake.catalog`).

Historically the column digest lived as a private helper inside
:mod:`repro.inference.idle`; it is hoisted here so the inference memo
and the lake share one definition (``tests/test_perf_and_digest.py``
pins the old and new digests bit-for-bit).
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np

from ..trace import BlockTrace

__all__ = ["trace_digest", "file_sha256"]

#: Digest size (bytes) of :func:`trace_digest` — pinned: the inference
#: memo keys and the lake's trace fingerprints both embed it.
TRACE_DIGEST_SIZE = 20


def trace_digest(trace: BlockTrace) -> bytes:
    """Cheap content fingerprint of the columns inference reads.

    Traces materialised through the binary trace store already carry a
    content fingerprint that uniquely determines every column — reuse
    it and skip hashing entirely.  Otherwise hash the columns with
    ``blake2b`` (measurably faster than sha1 at these sizes) fed
    contiguous memoryviews, so no column is ever copied out to an
    intermediate ``bytes``.
    """
    if trace.content_fingerprint is not None:
        return trace.content_fingerprint.encode("utf-8")
    h = hashlib.blake2b(digest_size=TRACE_DIGEST_SIZE)
    for column in (trace.timestamps, trace.lbas, trace.sizes, trace.ops):
        h.update(memoryview(np.ascontiguousarray(column)))
    if trace.has_device_times:
        assert trace.issues is not None and trace.completes is not None
        h.update(memoryview(np.ascontiguousarray(trace.issues)))
        h.update(memoryview(np.ascontiguousarray(trace.completes)))
    return h.digest()


def file_sha256(path: str | Path, chunk_bytes: int = 1 << 20) -> str:
    """Hex SHA-256 of a file's bytes, read in fixed-size chunks.

    The result lake's artifact address: two files with identical bytes
    (a trace-store entry copied between directories, a results table
    regenerated bit-identically) share one catalog row regardless of
    where they live on disk.
    """
    h = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(chunk_bytes)
            if not block:
                break
            h.update(block)
    return h.hexdigest()
