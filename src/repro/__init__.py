"""TraceTracker reproduction: hardware/software co-evaluation for
large-scale I/O workload reconstruction (Kwon et al., IISWC 2017).

Quick start::

    from repro import (
        TraceTracker, FlashArray, HDDModel,
        get_spec, generate_intents, collect_trace,
    )

    spec = get_spec("MSNFS")
    old = collect_trace(generate_intents(spec), HDDModel())
    result = TraceTracker().reconstruct(old, FlashArray())
    print(result.trace)

Subpackages
-----------
``repro.trace``
    Block trace data layer: records, containers, parsers, writers.
``repro.analysis``
    Distributions, Algorithm 1 steepness, pchip/spline interpolation.
``repro.storage``
    Device simulators: HDD, flash SSD, all-flash array, channels.
``repro.workloads``
    Synthetic workload specs (the 31-workload catalog), generation,
    trace collection, idle injection.
``repro.inference``
    The software-evaluation half: latency model inference and idle
    extraction.
``repro.replay``
    The hardware-evaluation half: replayer, collector, async revival.
``repro.core``
    The TraceTracker pipeline and the baseline methods.
``repro.metrics``
    Verification statistics, trace comparisons, idle breakdowns.
``repro.experiments``
    Evaluation nodes, OLD/NEW pairs, per-figure experiments, the
    parallel experiment runner (``repro-report``).
``repro.campaign``
    Declarative device x workload sweep campaigns with resumable
    sharded execution (``repro-campaign``).
``repro.service``
    Always-on streaming reconstruction daemon with backpressure,
    crash recovery, and poison-record quarantine (``repro-serve``).
"""

from .campaign import (
    CampaignEngine,
    CampaignSpec,
    DeviceSpec,
    ResultsTable,
    load_spec,
    run_campaign,
)
from .core import (
    Acceleration,
    Dynamic,
    FixedThreshold,
    ReconstructionMethod,
    ReconstructionResult,
    Revision,
    TraceTracker,
    TraceTrackerConfig,
    TraceTrackerMethod,
    standard_methods,
)
from .inference import (
    IdleExtraction,
    InferenceConfig,
    InferenceReport,
    LatencyModel,
    estimate_model,
    extract_idle,
)
from .storage import (
    ConstantLatencyDevice,
    FlashArray,
    FlashGeometry,
    FlashSSD,
    HDDGeometry,
    HDDModel,
    InterfaceChannel,
    StorageDevice,
)
from .trace import (
    BlockTrace,
    IORecord,
    OpType,
    TraceBuilder,
    TraceReader,
    TraceStore,
    dump_trace,
    load_trace,
    load_trace_npz,
    save_trace_npz,
)
from .workloads import (
    WorkloadSpec,
    collect_trace,
    generate_intents,
    get_spec,
    inject_idles,
    workload_names,
)

__version__ = "1.0.0"

__all__ = [
    "CampaignEngine",
    "CampaignSpec",
    "DeviceSpec",
    "ResultsTable",
    "load_spec",
    "run_campaign",
    "Acceleration",
    "Dynamic",
    "FixedThreshold",
    "ReconstructionMethod",
    "ReconstructionResult",
    "Revision",
    "TraceTracker",
    "TraceTrackerConfig",
    "TraceTrackerMethod",
    "standard_methods",
    "IdleExtraction",
    "InferenceConfig",
    "InferenceReport",
    "LatencyModel",
    "estimate_model",
    "extract_idle",
    "ConstantLatencyDevice",
    "FlashArray",
    "FlashGeometry",
    "FlashSSD",
    "HDDGeometry",
    "HDDModel",
    "InterfaceChannel",
    "StorageDevice",
    "BlockTrace",
    "IORecord",
    "OpType",
    "TraceBuilder",
    "TraceReader",
    "TraceStore",
    "load_trace",
    "load_trace_npz",
    "save_trace_npz",
    "dump_trace",
    "WorkloadSpec",
    "collect_trace",
    "generate_intents",
    "get_spec",
    "inject_idles",
    "workload_names",
    "__version__",
]
