"""Minimal discrete-event simulation engine.

The storage models in this package are mostly expressible as
"busy-until" resource algebra, but queue-depth studies, the replayer's
asynchronous completion tracking, and several tests want a real event
loop.  This module provides a small, deterministic one: a time-ordered
heap of callbacks with stable FIFO tie-breaking.

Time is in microseconds, like everywhere else in the library.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["Event", "EventQueue", "Simulation"]


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering: time, then insertion sequence."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        self.cancelled = True


class EventQueue:
    """Deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def push(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at ``time`` and return the handle."""
        event = Event(time=time, seq=next(self._counter), action=action)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest live event (None when empty)."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None


class Simulation:
    """Event loop with a virtual clock.

    >>> sim = Simulation()
    >>> hits = []
    >>> _ = sim.schedule_at(5.0, lambda: hits.append(sim.now))
    >>> _ = sim.schedule_after(2.0, lambda: hits.append(sim.now))
    >>> sim.run()
    >>> hits
    [2.0, 5.0]
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self.now = 0.0

    def schedule_at(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at absolute virtual time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < now {self.now}")
        return self._queue.push(time, action)

    def schedule_after(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` ``delay`` microseconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self._queue.push(self.now + delay, action)

    def run(self, until: float | None = None) -> None:
        """Drain events, optionally stopping once the clock passes ``until``.

        With ``until`` given, the clock is advanced to exactly ``until``
        even if the last event fires earlier.
        """
        while True:
            next_time = self._queue.peek_time()
            if next_time is None or (until is not None and next_time > until):
                break
            event = self._queue.pop()
            assert event is not None
            self.now = event.time
            event.action()
        if until is not None and until > self.now:
            self.now = until

    def step(self) -> bool:
        """Run a single event; return False when nothing is pending."""
        event = self._queue.pop()
        if event is None:
            return False
        self.now = event.time
        event.action()
        return True

    @property
    def pending(self) -> int:
        """Number of live scheduled events."""
        return len(self._queue)
