"""Tiered hybrid device: flash front tier with HDD spill.

Hybrid arrays place hot, low-address data on flash and spill the rest
to disk.  :class:`TieredHybrid` models the steady state of such a
layout with a *static* address-based placement: requests whose start
LBA falls below ``flash_sectors`` are serviced by the flash tier,
everything else by the HDD tier.  Placement by start address (a
request straddling the boundary goes entirely to the tier of its first
sector) keeps routing a pure function of the request — no migration
state — which is what lets the device participate in the batch and
queue-depth identity matrix like any other zoo member.
"""

from __future__ import annotations

import numpy as np

from ..trace.record import OpType
from .channel import InterfaceChannel
from .device import StorageDevice

__all__ = ["TieredHybrid"]


class TieredHybrid(StorageDevice):
    """Flash tier below ``flash_sectors``, HDD tier at and above it.

    Both tiers see the original (global) LBAs: the flash tier's
    addresses are naturally dense at the bottom of the space, and the
    disk tier's offset only shifts which cylinders it uses.
    """

    fifo_single_server = False

    def __init__(
        self,
        flash_tier: StorageDevice,
        hdd_tier: StorageDevice,
        flash_sectors: int,
        channel: InterfaceChannel | None = None,
    ) -> None:
        if flash_sectors <= 0:
            raise ValueError("flash tier capacity must be positive")
        super().__init__(channel if channel is not None else flash_tier.channel)
        self.flash_tier = flash_tier
        self.hdd_tier = hdd_tier
        self.flash_sectors = int(flash_sectors)

    @property
    def name(self) -> str:
        """Human-readable model name."""
        return (
            f"tiered({self.flash_tier.name}<{self.flash_sectors}sec|{self.hdd_tier.name})"
        )

    def fingerprint(self) -> str:
        return (
            f"{super().fingerprint()}|split={self.flash_sectors}"
            f"|flash={self.flash_tier.fingerprint()}|hdd={self.hdd_tier.fingerprint()}"
        )

    def reset(self) -> None:
        """Cold state: both tiers reset."""
        super().reset()
        self.flash_tier.reset()
        self.hdd_tier.reset()

    def _service(self, op: OpType, lba: int, size: int, t_ready: float) -> tuple[float, float]:
        tier = self.flash_tier if lba < self.flash_sectors else self.hdd_tier
        return tier._service(op, lba, size, t_ready)

    def supports_batch(self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray) -> bool:
        """Gap-invariant when each tier supports its routed substream."""
        mask = np.asarray(lbas, dtype=np.int64) < self.flash_sectors
        ops_arr = np.asarray(ops)
        lbas_arr = np.asarray(lbas, dtype=np.int64)
        sizes_arr = np.asarray(sizes, dtype=np.int64)
        if mask.any() and not self.flash_tier.supports_batch(
            ops_arr[mask], lbas_arr[mask], sizes_arr[mask]
        ):
            return False
        spill = ~mask
        if spill.any() and not self.hdd_tier.supports_batch(
            ops_arr[spill], lbas_arr[spill], sizes_arr[spill]
        ):
            return False
        return True

    def _service_batch(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray
    ) -> np.ndarray:
        # Each tier prices its substream in stream order, which is the
        # order the scalar path would route requests to it — so
        # order-dependent member state (HDD head position, RNG draws)
        # is consumed identically.
        ops_arr = np.asarray(ops)
        lbas_arr = np.asarray(lbas, dtype=np.int64)
        sizes_arr = np.asarray(sizes, dtype=np.int64)
        mask = lbas_arr < self.flash_sectors
        out = np.empty(len(lbas_arr), dtype=np.float64)
        if mask.any():
            out[mask] = self.flash_tier.service_batch(
                ops_arr[mask], lbas_arr[mask], sizes_arr[mask]
            )
        spill = ~mask
        if spill.any():
            out[spill] = self.hdd_tier.service_batch(
                ops_arr[spill], lbas_arr[spill], sizes_arr[spill]
            )
        return out

    def _expected_service(self, op: OpType, size: int, sequential: bool) -> float:
        """Front (flash) tier's analytic mean — the design steady state."""
        return self.flash_tier.service_time_us(op, size, sequential)
