"""Flash SSD model: channels, dies, planes, page operations, write buffer.

This is one device of the paper's all-flash array: "a single device
consists of 18 channels, 36 dies, and 72 planes" (Section V).  The model
tracks per-channel and per-die availability so that large or
well-striped requests enjoy internal parallelism while single-page
random requests see the raw page latency — the behaviour that gives
flash its characteristic latency/bandwidth profile:

- a read occupies the target die for the page read, then the die's
  channel for the page transfer out;
- a write occupies the channel for the transfer in, then the die for
  the program operation;
- an optional DRAM write buffer acknowledges writes at transfer speed
  and drains programs in the background, throttling when full — this is
  why a modern NVMe drive acks a 4 KB write in tens of microseconds
  while a program takes closer to a millisecond.

Pages are striped over dies round-robin by page number, the classic
channel-first interleaving.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..trace.record import SECTOR_BYTES, OpType
from .channel import PCIE3_X4, InterfaceChannel
from .device import StorageDevice
from .kernels import (
    COLUMNAR_MIN_PAGES,
    columnar_enabled,
    group_shapes,
    page_span,
    program_wave_kernel,
    read_wave_kernel,
)

__all__ = ["FlashGeometry", "FlashSSD", "FlashReplayPlan"]


class _RelService:
    """Memoised *relative* outcome of one request shape on an idle SSD.

    All values are offsets from the request's ``t_ready``.  Because the
    die/channel striping pattern of a page extent depends only on
    ``first_page % total_dies`` and the page count, one relative
    computation serves every request with the same shape — the replay
    hot path becomes a dict lookup plus a sparse state update.

    Die and channel state is *slot-indexed* (die ``page % total_dies``,
    channel ``page % channels``), so the slots a shape touches form a
    contiguous circular range.  The entry precomputes that range as at
    most two ``[a, b)`` segments plus, when every touched die (channel)
    lands on the same relative stamp — true for any extent of at most
    ``channels`` pages, i.e. every single-wave shape — the shared
    *uniform* value.  The replay engine's idle probe then collapses to
    ``max()`` over a list slice and its commit to a slice assignment,
    replacing the per-die Python loops that dominated flash replay.
    """

    __slots__ = (
        "svc", "drain_rel", "die_items", "chan_items", "horizon", "walk",
        "slot", "n_pages", "die_segs", "die_uval", "chan_segs", "chan_uval",
        "is_read", "nbytes", "buffered", "walk_pairs", "walk_op_us",
        "busy_read_fn", "busy_prog_fn", "try_fn",
    )

    def __init__(
        self,
        svc: float,
        drain_rel: float,
        die_rel: dict[int, float],
        chan_rel: dict[int, float],
        slot: int,
        n_pages: int,
        total_dies: int,
        channels: int,
        walk: list[tuple[int, int, float]] | None = None,
    ) -> None:
        self.svc = svc
        self.drain_rel = drain_rel
        #: (die slot, relative busy-until) pairs, first-visit page order.
        self.die_items = list(die_rel.items())
        self.chan_items = list(chan_rel.items())
        peak = max(
            max((v for _, v in self.die_items), default=0.0),
            max((v for _, v in self.chan_items), default=0.0),
        )
        self.horizon = max(svc, drain_rel, peak)
        #: Per-page ``(channel, die slot, op_us)`` tuples in page order —
        #: the shape's occupancy walk with the striping modulos and the
        #: multi-plane speedups resolved once, so the replay engine's
        #: busy path can re-run the scalar recurrence without dict or
        #: geometry lookups.
        self.walk = walk
        self.slot = slot
        self.n_pages = n_pages
        # Touched-slot ranges: [a1, b1) and the wrapped [0, b2).
        k = n_pages if n_pages < total_dies else total_dies
        if slot + k <= total_dies:
            self.die_segs = (slot, slot + k, 0)
        else:
            self.die_segs = (slot, total_dies, slot + k - total_dies)
        base_c = slot % channels
        kc = n_pages if n_pages < channels else channels
        if base_c + kc <= channels:
            self.chan_segs = (base_c, base_c + kc, 0)
        else:
            self.chan_segs = (base_c, channels, base_c + kc - channels)
        die_vals = list(die_rel.values())
        self.die_uval = die_vals[0] if die_vals.count(die_vals[0]) == len(die_vals) else None
        chan_vals = list(chan_rel.values())
        self.chan_uval = (
            chan_vals[0] if chan_vals.count(chan_vals[0]) == len(chan_vals) else None
        )
        # Request-shape flags the replay engine needs per fragment;
        # the shape key includes op and size, so they are entry facts.
        # Filled by ``FlashSSD._rel_entry``.
        self.is_read = True
        self.nbytes = 0
        self.buffered = False
        # Uniform-op walk split: ``walk_pairs`` is the (channel, slot)
        # page sequence and ``walk_op_us`` the shared per-page array
        # time, set when every page has the same op time and no die or
        # channel is visited twice (``n_pages <= channels``) so page
        # outcomes are mutually independent.  The busy walks then
        # compute only the exceptional busy slots page by page and
        # bulk-write the uniform remainder with slice assignments.
        if walk and n_pages <= channels and all(w[2] == walk[0][2] for w in walk):
            self.walk_pairs = [(ch, s) for ch, s, __ in walk]
            self.walk_op_us = walk[0][2]
        else:
            self.walk_pairs = None
            self.walk_op_us = None
        # Specialised busy-walk closures (geometry constants bound);
        # filled by ``FlashSSD._rel_entry``, ``None`` for shapes that
        # stay on the method walks (no pairs, or columnar-sized).
        # ``try_fn`` fuses probe + commit + busy walk into one call for
        # the epoch engine's serial branch (reads and unbuffered
        # writes; buffered writes keep the split path for the buffer
        # bookkeeping between probe and commit).
        self.busy_read_fn = None
        self.busy_prog_fn = None
        self.try_fn = None


def _entry_idle_sparse(db: list, cb: list, e: _RelService, t_ready: float) -> bool:
    """Exact sparse idle probe over the entry's contiguous slot ranges.

    Equivalent to ``FlashSSD._state_idle_for`` with the horizon tier
    already checked by the caller: ``True`` iff no touched die or
    channel is busy past ``t_ready``.  ``max()`` over a list slice is
    the same comparison set as the scalar per-item loop.
    """
    a, b, b2 = e.die_segs
    if max(db[a:b]) > t_ready:
        return False
    if b2 and max(db[:b2]) > t_ready:
        return False
    a, b, b2 = e.chan_segs
    if max(cb[a:b]) > t_ready:
        return False
    if b2 and max(cb[:b2]) > t_ready:
        return False
    return True


def _entry_commit(db: list, cb: list, e: _RelService, t_ready: float) -> None:
    """Apply the entry's busy-stamp update; bitwise ``_commit_fast`` twin.

    Uniform single-wave shapes commit with slice assignments (the
    shared stamp ``t_ready + v`` equals what the per-item loop writes,
    same operands); non-uniform shapes fall back to the item loop.
    The caller owns the horizon update (the replay engine mirrors
    member horizons into locals).
    """
    u = e.die_uval
    if u is not None:
        a, b, b2 = e.die_segs
        v = t_ready + u
        db[a:b] = [v] * (b - a)
        if b2:
            db[:b2] = [v] * b2
    else:
        for s, rel in e.die_items:
            db[s] = t_ready + rel
    u = e.chan_uval
    if u is not None:
        a, b, b2 = e.chan_segs
        v = t_ready + u
        cb[a:b] = [v] * (b - a)
        if b2:
            cb[:b2] = [v] * b2
    else:
        for c, rel in e.chan_items:
            cb[c] = t_ready + rel


def _make_entry_apply(e: _RelService):
    """Specialised commit closure for one memo entry.

    Stamps the same values on the same slots as :func:`_entry_commit`
    (bitwise — same ``t_ready + rel`` operands), with the shape-
    dependent dispatch resolved once at plan-build time instead of per
    commit: narrow uniform spans (wrapped included) unroll to direct
    item stores, wide ones keep the slice assignment, non-uniform
    shapes fall back to :func:`_entry_commit`.  Entries are memoised
    per unique request shape, so only a handful of closures exist per
    plan.
    """
    du, cu = e.die_uval, e.chan_uval
    if du is None or cu is None:

        def apply(db: list, cb: list, t_ready: float) -> None:
            _entry_commit(db, cb, e, t_ready)

        return apply
    a, b, b2 = e.die_segs
    c, d, d2 = e.chan_segs
    didx = tuple(range(a, b)) + tuple(range(b2))
    cidx = tuple(range(c, d)) + tuple(range(d2))
    if len(didx) == 1 and len(cidx) == 1:
        di, ci = didx[0], cidx[0]

        def apply(db: list, cb: list, t_ready: float) -> None:
            db[di] = t_ready + du
            cb[ci] = t_ready + cu

        return apply
    if len(didx) <= 4 and len(cidx) <= 4:

        def apply(db: list, cb: list, t_ready: float) -> None:
            v = t_ready + du
            for i in didx:
                db[i] = v
            v = t_ready + cu
            for j in cidx:
                cb[j] = v

        return apply
    wd = b - a
    wc = d - c

    def apply(db: list, cb: list, t_ready: float) -> None:
        v = t_ready + du
        db[a:b] = [v] * wd
        if b2:
            db[:b2] = [v] * b2
        v = t_ready + cu
        cb[c:d] = [v] * wc
        if d2:
            cb[:d2] = [v] * d2

    return apply


def _make_entry_probe(e: _RelService):
    """Specialised idle-probe closure for one memo entry.

    Decides exactly :func:`_entry_idle_sparse` (``True`` iff no touched
    die or channel is busy past the ready time — pure comparisons, so
    no numeric-identity concerns), with the slot ranges resolved at
    plan-build time: narrow spans unroll to direct item compares, wide
    ones keep the ``max()``-over-slice form.
    """
    a, b, b2 = e.die_segs
    c, d, d2 = e.chan_segs
    didx = tuple(range(a, b)) + tuple(range(b2))
    cidx = tuple(range(c, d)) + tuple(range(d2))
    if len(didx) == 1 and len(cidx) == 1:
        di, ci = didx[0], cidx[0]

        def probe(db: list, cb: list, t_ready: float) -> bool:
            return db[di] <= t_ready and cb[ci] <= t_ready

        return probe
    if len(didx) <= 4 and len(cidx) <= 4:

        def probe(db: list, cb: list, t_ready: float) -> bool:
            for i in didx:
                if db[i] > t_ready:
                    return False
            for j in cidx:
                if cb[j] > t_ready:
                    return False
            return True

        return probe

    def probe(db: list, cb: list, t_ready: float) -> bool:
        if max(db[a:b]) > t_ready:
            return False
        if b2 and max(db[:b2]) > t_ready:
            return False
        if max(cb[c:d]) > t_ready:
            return False
        return not (d2 and max(cb[:d2]) > t_ready)

    return probe


def _make_busy_read(e: _RelService, xfer_us: float):
    """Specialised busy-read walk for one memo entry.

    Bitwise twin of :meth:`FlashSSD._busy_read`'s ``walk_pairs`` path
    (same operands, same ``fl`` order), with the entry attributes, the
    geometry transfer time, and the slice-fill lengths resolved once at
    entry-memoisation time.  Single-page shapes unroll to the plain
    two-step recurrence — for one page the exception bookkeeping and
    the direct recurrence write the same stamps, so the unroll is an
    identity.  Returns ``None`` for shapes the method walk must keep
    (no uniform pairs, or columnar-kernel sized).
    """
    pairs = e.walk_pairs
    if pairs is None or e.n_pages >= COLUMNAR_MIN_PAGES:
        return None
    op_us = e.walk_op_us
    if len(pairs) == 1:
        ch, slot = pairs[0]

        def busy(db: list, cb: list, t_ready: float) -> float:
            d = db[slot]
            read_done = (t_ready if t_ready >= d else d) + op_us
            c = cb[ch]
            xfer_done = (read_done if read_done >= c else c) + xfer_us
            db[slot] = read_done
            cb[ch] = xfer_done
            return xfer_done

        return busy
    pt = tuple(pairs)
    da, dbnd, db2 = e.die_segs
    ca, cbnd, cb2 = e.chan_segs
    dn = dbnd - da
    cn = cbnd - ca

    def busy(db: list, cb: list, t_ready: float) -> float:
        v1 = t_ready + op_us
        w1 = v1 + xfer_us
        finish = t_ready
        die_over = None
        chan_over = None
        uniform = False
        for ch, slot in pt:
            d = db[slot]
            c = cb[ch]
            if d <= t_ready and c <= v1:
                uniform = True
                continue
            read_done = (t_ready if t_ready >= d else d) + op_us
            xfer_done = (read_done if read_done >= c else c) + xfer_us
            if die_over is None:
                die_over = []
                chan_over = []
            die_over.append((slot, read_done))
            chan_over.append((ch, xfer_done))
            if xfer_done > finish:
                finish = xfer_done
        if uniform and w1 > finish:
            finish = w1
        db[da:dbnd] = [v1] * dn
        if db2:
            db[:db2] = [v1] * db2
        cb[ca:cbnd] = [w1] * cn
        if cb2:
            cb[:cb2] = [w1] * cb2
        if die_over is not None:
            for slot, v in die_over:
                db[slot] = v
            for ch, v in chan_over:
                cb[ch] = v
        return finish

    return busy


def _make_busy_program(e: _RelService, xfer_us: float):
    """Specialised busy-program walk; bitwise twin of
    :meth:`FlashSSD._busy_program`'s ``walk_pairs`` path (see
    :func:`_make_busy_read` for the specialisation contract)."""
    pairs = e.walk_pairs
    if pairs is None or e.n_pages >= COLUMNAR_MIN_PAGES:
        return None
    op_us = e.walk_op_us
    if len(pairs) == 1:
        ch, slot = pairs[0]

        def busy(db: list, cb: list, t_ready: float) -> float:
            c = cb[ch]
            xfer_done = (t_ready if t_ready >= c else c) + xfer_us
            d = db[slot]
            prog_done = (xfer_done if xfer_done >= d else d) + op_us
            cb[ch] = xfer_done
            db[slot] = prog_done
            return prog_done

        return busy
    pt = tuple(pairs)
    da, dbnd, db2 = e.die_segs
    ca, cbnd, cb2 = e.chan_segs
    dn = dbnd - da
    cn = cbnd - ca

    def busy(db: list, cb: list, t_ready: float) -> float:
        v1 = t_ready + xfer_us
        w1 = v1 + op_us
        finish = t_ready
        die_over = None
        chan_over = None
        uniform = False
        for ch, slot in pt:
            c = cb[ch]
            d = db[slot]
            if c <= t_ready:
                if d <= v1:
                    uniform = True
                    continue
                xfer_done = v1
            else:
                xfer_done = c + xfer_us
                if chan_over is None:
                    chan_over = []
                chan_over.append((ch, xfer_done))
            prog_done = (xfer_done if xfer_done >= d else d) + op_us
            if die_over is None:
                die_over = []
            die_over.append((slot, prog_done))
            if prog_done > finish:
                finish = prog_done
        if uniform and w1 > finish:
            finish = w1
        cb[ca:cbnd] = [v1] * cn
        if cb2:
            cb[:cb2] = [v1] * cb2
        db[da:dbnd] = [w1] * dn
        if db2:
            db[:db2] = [w1] * db2
        if chan_over is not None:
            for ch, v in chan_over:
                cb[ch] = v
        if die_over is not None:
            for slot, v in die_over:
                db[slot] = v
        return finish

    return busy


def _make_try_fn(e: _RelService, busy, xfer_us: float):
    """Fused probe + commit + busy walk for the epoch serial branch.

    One call replaces the probe/apply (or probe/busy-walk) pair the
    wave loop would otherwise make per serial fragment: probes exactly
    :func:`_make_entry_probe`'s condition, commits exactly
    :func:`_make_entry_apply`'s stamps on a pass and returns ``0.0``,
    or runs the entry's busy walk and returns its finish (every real
    finish is positive, so truthiness is the pass/busy discriminator).
    Single-page shapes additionally reuse the probed slot values inside
    the inlined walk.  ``None`` when the entry has no specialised busy
    closure or non-uniform stamps — the wave keeps the split path.
    """
    du, cu = e.die_uval, e.chan_uval
    if busy is None or du is None or cu is None:
        return None
    a, b, b2 = e.die_segs
    c, d, d2 = e.chan_segs
    didx = tuple(range(a, b)) + tuple(range(b2))
    cidx = tuple(range(c, d)) + tuple(range(d2))
    if len(didx) == 1 and len(cidx) == 1:
        di, ci = didx[0], cidx[0]
        op_us = e.walk_op_us
        if e.is_read:

            def try_fn(db: list, cb: list, t_ready: float) -> float:
                dv = db[di]
                cv = cb[ci]
                if dv <= t_ready and cv <= t_ready:
                    db[di] = t_ready + du
                    cb[ci] = t_ready + cu
                    return 0.0
                read_done = (t_ready if t_ready >= dv else dv) + op_us
                xfer_done = (read_done if read_done >= cv else cv) + xfer_us
                db[di] = read_done
                cb[ci] = xfer_done
                return xfer_done

        else:

            def try_fn(db: list, cb: list, t_ready: float) -> float:
                dv = db[di]
                cv = cb[ci]
                if dv <= t_ready and cv <= t_ready:
                    db[di] = t_ready + du
                    cb[ci] = t_ready + cu
                    return 0.0
                xfer_done = (t_ready if t_ready >= cv else cv) + xfer_us
                prog_done = (xfer_done if xfer_done >= dv else dv) + op_us
                cb[ci] = xfer_done
                db[di] = prog_done
                return prog_done

        return try_fn
    if len(didx) <= 4 and len(cidx) <= 4:

        def try_fn(db: list, cb: list, t_ready: float) -> float:
            for i in didx:
                if db[i] > t_ready:
                    return busy(db, cb, t_ready)
            for j in cidx:
                if cb[j] > t_ready:
                    return busy(db, cb, t_ready)
            v = t_ready + du
            for i in didx:
                db[i] = v
            v = t_ready + cu
            for j in cidx:
                cb[j] = v
            return 0.0

        return try_fn
    wd = b - a
    wc = d - c

    def try_fn(db: list, cb: list, t_ready: float) -> float:
        if (
            max(db[a:b]) > t_ready
            or (b2 and max(db[:b2]) > t_ready)
            or max(cb[c:d]) > t_ready
            or (d2 and max(cb[:d2]) > t_ready)
        ):
            return busy(db, cb, t_ready)
        v = t_ready + du
        db[a:b] = [v] * wd
        if b2:
            db[:b2] = [v] * b2
        v = t_ready + cu
        cb[c:d] = [v] * wc
        if d2:
            cb[:d2] = [v] * d2
        return 0.0

    return try_fn


def _entries_apply_run(
    db: list,
    cb: list,
    recs: list,
    t_vals: list,
    p: int,
    s: int,
    buf,
    bb: int,
    cap: int,
) -> tuple[int, int]:
    """Apply fragment positions ``[p, s)`` at ready times ``t_vals[p:s]``.

    The epoch replay engine's gap loop: every fragment in the run is
    provably idle at its ready time (ack at or above every horizon
    bound), so reads and unbuffered writes commit their memoised stamps
    (the ``apply`` slot of each ``recs`` record, see
    :func:`_make_entry_apply`) back-to-back with no probes, and a
    buffered write (whose record carries its ``(nbytes, drain_rel)``
    in the ``wmeta`` slot, ``None`` for everything else) is fast as
    soon as it fits the write buffer.  Buffer occupancy uses *deferred
    retirement*: ``bb`` counts every admission but drains are only
    popped when the conservative fit test ``bb + nbytes <= cap`` fails
    (the tracked ``bb`` never undercounts the serial engine's, and
    head-of-line pops at a later, larger ack free exactly the entries
    the per-write pops would have — the deque is FIFO and acks are
    non-decreasing — so the catch-up leaves deque and count in the
    precise per-write state).  Returns ``(q, bb)``: ``q == s`` when the
    run completed, else the position of a buffered write that does not
    fit even after exact retirement and needs the slow admission path.
    """
    for q in range(p, s):
        t_ready = t_vals[q]
        r = recs[q]
        wm = r[3]
        if wm is not None:
            nb, dr = wm
            if bb + nb > cap:
                while buf and buf[0][0] <= t_ready:
                    __, freed = buf.popleft()
                    bb -= freed
                if bb + nb > cap:
                    return q, bb
            buf.append((t_ready + dr, nb))
            bb += nb
        r[2](db, cb, t_ready)
    return s, bb


class _MemberColumns:
    """Member-major fragment columns for the epoch-batched replay engine.

    One instance per member SSD, holding that member's fragments in the
    exact (request-major) order the serial plan loop visits them —
    request indices are therefore non-decreasing, which is what lets
    the epoch engine slice a request range with ``searchsorted`` and
    treat the gathered ack column as sorted.  The float columns are the
    memo facts the vectorised fast/slow classification reads
    (``entry.horizon`` and ``entry.svc``); ``wbuf`` lists the positions
    of the buffered-write fragments, which the epoch engine uses to
    find the last buffer admission of a wave (the threshold for the
    final deferred-retirement catch-up).  ``applies`` holds the
    per-position commit closures (:func:`_make_entry_apply`, shared per
    unique entry), ``probes`` the idle-probe closures
    (:func:`_make_entry_probe`), and ``wmeta`` the per-position
    ``(nbytes, drain_rel)`` buffered-write facts (``None`` for reads
    and unbuffered writes), so the hot loops never touch entry
    attributes.  ``recs`` fuses the per-position facts into one record
    list ``(kind, probe, apply, wmeta, entry, busy, try)`` — kind 0
    read, 1 buffered write, 2 unbuffered write; ``busy`` the entry's
    specialised busy-walk closure (:func:`_make_busy_read` /
    :func:`_make_busy_program`) and ``try`` its fused
    probe-commit-or-walk closure (:func:`_make_try_fn`), either
    ``None`` when the shape stays on the method walks — so the wave
    loop pays a single list slice and a single index per fragment.
    """

    __slots__ = ("req", "hor", "svc", "ents", "wbuf", "recs")

    def __init__(
        self,
        req: np.ndarray,
        hor: np.ndarray,
        svc: np.ndarray,
        ents: list,
        wbuf: np.ndarray,
        applies: list,
        probes: list,
        wmeta: list,
    ) -> None:
        self.req = req
        self.hor = hor
        self.svc = svc
        self.ents = ents
        self.wbuf = wbuf
        kinds = [(0 if e.is_read else (1 if e.buffered else 2)) for e in ents]
        busys = [e.busy_read_fn if e.is_read else e.busy_prog_fn for e in ents]
        tries = [e.try_fn for e in ents]
        self.recs = list(zip(kinds, probes, applies, wmeta, ents, busys, tries))


def _build_member_columns(offsets: list[int], frags: list[tuple]) -> list:
    """Member-major column split of a plan's request-major fragment list.

    Returns one :class:`_MemberColumns` per member index (``None`` for
    members that own no fragments).  Pure and deterministic — computed
    once per plan and cached on the plan object, so repeated replays of
    a cached plan skip the Python pass entirely.
    """
    n_members = 1 + max((mi for mi, __ in frags), default=0)
    per: list[tuple[list, list, list, list]] = [([], [], [], []) for __ in range(n_members)]
    for i in range(len(offsets) - 1):
        for k in range(offsets[i], offsets[i + 1]):
            mi, e = frags[k]
            req_l, hor_l, svc_l, ents = per[mi]
            req_l.append(i)
            hor_l.append(e.horizon)
            svc_l.append(e.svc)
            ents.append(e)
    cols: list = []
    apply_cache: dict[int, object] = {}
    for req_l, hor_l, svc_l, ents in per:
        if not ents:
            cols.append(None)
            continue
        wbuf = np.array(
            [p for p, e in enumerate(ents) if not e.is_read and e.buffered],
            dtype=np.int64,
        )
        applies = []
        probes = []
        wmeta = []
        for e in ents:
            fns = apply_cache.get(id(e))
            if fns is None:
                fns = (_make_entry_apply(e), _make_entry_probe(e))
                apply_cache[id(e)] = fns
            applies.append(fns[0])
            probes.append(fns[1])
            wmeta.append((e.nbytes, e.drain_rel) if not e.is_read and e.buffered else None)
        cols.append(
            _MemberColumns(
                np.array(req_l, dtype=np.int64),
                np.array(hor_l, dtype=np.float64),
                np.array(svc_l, dtype=np.float64),
                ents,
                wbuf,
                applies,
                probes,
                wmeta,
            )
        )
    return cols


@dataclass(frozen=True, slots=True)
class FlashReplayPlan:
    """Precomputed per-request fragment columns for queue-depth replay.

    Built by :meth:`FlashSSD.replay_plan` / ``FlashArray.replay_plan``
    from the grouped shape kernels: request ``i`` owns fragments
    ``frags[offsets[i]:offsets[i + 1]]``, each a
    ``(member_index, entry)`` pair ready for the event loop's inlined
    fast paths (the per-fragment op/size facts — ``is_read``,
    ``nbytes``, ``buffered`` — live on the shape-keyed entry).  Member
    indices (not object references) keep the plan valid for *any*
    device with the same fingerprint, so plans are shareable through
    the content cache.  Construction is pure — no simulator state is
    read or consumed.
    """

    offsets: list[int]
    frags: list[tuple]
    #: ``True`` when fragments belong to an array (request start stamp
    #: is the array-level ready time, not a member's admission time).
    array_level: bool
    #: Lazily built member-major columns (epoch engine); cached on the
    #: plan so the one-time Python pass is amortised with the plan.
    cols: list | None = field(default=None, compare=False, repr=False)

    def members_of(self, device) -> list:
        """Member SSD list the fragment indices refer to, for ``device``."""
        return device.ssds if self.array_level else [device]

    def member_columns(self) -> list:
        """Member-major fragment columns, built on first use and cached."""
        cols = self.cols
        if cols is None:
            cols = _build_member_columns(self.offsets, self.frags)
            object.__setattr__(self, "cols", cols)
        return cols


#: Content-keyed plan cache: (device fingerprint, stream digest) ->
#: plan.  Entries are geometry-relative (member indices + shared memo
#: entries), so every fingerprint-equal device can consume them.
_PLAN_CACHE: dict[tuple, FlashReplayPlan] = {}
_PLAN_CACHE_MAX = 16


def _plan_cache_put(key: tuple, plan: FlashReplayPlan) -> None:
    """Insert with crude FIFO eviction (plans are cheap to rebuild)."""
    if len(_PLAN_CACHE) >= _PLAN_CACHE_MAX:
        _PLAN_CACHE.pop(next(iter(_PLAN_CACHE)))
    _PLAN_CACHE[key] = plan


def _stream_digest(ops, lbas, sizes) -> bytes:
    """Content hash of a request stream (the plan-cache key half)."""
    h = hashlib.blake2b(digest_size=16)
    for col in (ops, lbas, sizes):
        arr = np.ascontiguousarray(np.asarray(col))
        h.update(str(arr.dtype).encode())
        h.update(arr.tobytes())
    return h.digest()


#: Relative services depend only on (geometry, plane interleave,
#: channel), all immutable — so every SSD with the same configuration
#: (e.g. the four members of each freshly-built evaluation array)
#: shares one memo and the cache stays warm across device instances.
_SHARED_REL_CACHES: dict[object, dict[tuple[int, int, int, int], "_RelService"]] = {}


@dataclass(frozen=True, slots=True)
class FlashGeometry:
    """Structural and timing parameters of one SSD.

    Defaults approximate a 2015-era NVMe device (the Intel 750 class
    drive named in the paper): 18 channels × 2 dies, 8 KB pages, ~70 µs
    page read, ~900 µs program, 400 MB/s per-channel bus.
    """

    channels: int = 18
    dies_per_channel: int = 2
    planes_per_die: int = 2
    page_kb: int = 8
    read_us: float = 68.0
    program_us: float = 900.0
    channel_mb_s: float = 400.0
    write_buffer_kb: int = 512
    buffer_write_us: float = 18.0

    def __post_init__(self) -> None:
        if min(self.channels, self.dies_per_channel, self.planes_per_die, self.page_kb) <= 0:
            raise ValueError("geometry counts must be positive")
        if min(self.read_us, self.program_us, self.channel_mb_s, self.buffer_write_us) <= 0:
            raise ValueError("timing parameters must be positive")
        if self.write_buffer_kb < 0:
            raise ValueError("write buffer size must be non-negative")

    @property
    def total_dies(self) -> int:
        """Dies across all channels."""
        return self.channels * self.dies_per_channel

    @property
    def total_planes(self) -> int:
        """Planes across all dies."""
        return self.total_dies * self.planes_per_die

    @property
    def page_sectors(self) -> int:
        """Sectors per flash page."""
        return self.page_kb * 1024 // SECTOR_BYTES

    @property
    def page_transfer_us(self) -> float:
        """Time to move one page over a flash channel bus."""
        return self.page_kb * 1024 / (self.channel_mb_s * 1e6) * 1e6

    def die_of_page(self, page: int) -> tuple[int, int]:
        """(channel, die-within-channel) for a page, channel-first striping."""
        die_global = page % self.total_dies
        return die_global % self.channels, die_global // self.channels


class FlashSSD(StorageDevice):
    """One NVMe SSD with internal channel/die parallelism.

    Parameters
    ----------
    geometry:
        Structure and NAND timings; defaults match the paper's device.
    channel:
        Host link; defaults to PCIe 3.0 x4.
    plane_interleave:
        When ``True`` (default), multi-plane commands cut effective
        page-op latency by the plane count for requests spanning
        multiple consecutive pages on one die — a standard NAND
        optimisation the array needs to reach its headline bandwidth.
    """

    def __init__(
        self,
        geometry: FlashGeometry | None = None,
        channel: InterfaceChannel = PCIE3_X4,
        plane_interleave: bool = True,
    ) -> None:
        super().__init__(channel)
        self.geometry = geometry or FlashGeometry()
        self.plane_interleave = plane_interleave
        g = self.geometry
        # Flat lists (index = ch * dies_per_channel + die) rather than
        # NumPy arrays: the service paths read and write one scalar at a
        # time, where list indexing is several times cheaper.
        self._die_busy: list[float] = [0.0] * g.total_dies
        self._chan_busy: list[float] = [0.0] * g.channels
        # Write buffer: FIFO of (drain_complete_time, bytes) entries.
        self._buffered: deque[tuple[float, int]] = deque()
        self._buffered_bytes = 0
        # Fast-path bookkeeping: memoised relative services and the
        # global busy horizon (max of every die/channel/drain stamp).
        self._rel_cache = _SHARED_REL_CACHES.setdefault(
            (self.geometry, plane_interleave, channel), {}
        )
        self._state_horizon = 0.0
        # Scalars hoisted out of the per-request path (geometry is
        # frozen, but its properties recompute on every access).
        self._page_sectors = g.page_sectors
        self._total_dies = g.total_dies
        self._buffer_capacity = g.write_buffer_kb * 1024
        self._xfer_us = g.page_transfer_us
        # Die/channel state is *slot-indexed*: die slot = page %
        # total_dies, channel = page % channels (total_dies is a
        # multiple of channels, so the two stripings agree).  A page
        # extent therefore touches a contiguous circular slot range —
        # what lets the memoised entries describe their footprint as
        # slices.  ``_map_ch`` caches slot -> channel for the scalar
        # walks (list indexing beats a per-page modulo); the columnar
        # kernels derive the mapping from ``channels`` themselves.
        self._map_ch = (np.arange(self._total_dies, dtype=np.int64) % g.channels).tolist()

    @property
    def name(self) -> str:
        """Human-readable model name."""
        g = self.geometry
        return f"flash({g.channels}ch/{g.total_dies}die/{g.total_planes}pl)"

    def fingerprint(self) -> str:
        return f"{super().fingerprint()}|{self.geometry!r}|interleave={self.plane_interleave}"

    def reset(self) -> None:
        """Cold state: all channels and dies idle, buffer empty.

        The relative-service memo survives resets — it depends only on
        the (immutable) geometry, not on simulator state.
        """
        super().reset()
        g = self.geometry
        self._die_busy = [0.0] * g.total_dies
        self._chan_busy = [0.0] * g.channels
        self._buffered.clear()
        self._buffered_bytes = 0
        self._state_horizon = 0.0

    # ------------------------------------------------------------------

    def _pages_of(self, lba: int, size: int) -> range:
        """Flash pages touched by a sector extent."""
        first, n_pages = page_span(lba, size, self._page_sectors)
        return range(first, first + n_pages)

    def _page_op_us(self, base_us: float, n_pages_on_die: int) -> float:
        """Effective per-page array time with multi-plane interleaving."""
        if not self.plane_interleave or n_pages_on_die <= 1:
            return base_us
        speedup = min(self.geometry.planes_per_die, n_pages_on_die)
        return base_us / speedup

    def _read_pages(self, pages: range, t_ready: float) -> float:
        """Service a read: die array read, then channel transfer out.

        Retained scalar walk — the oracle for the columnar read paths
        (:func:`~repro.storage.kernels.read_wave_kernel` and the
        memoised per-shape walks).
        """
        g = self.geometry
        td = self._total_dies
        map_ch = self._map_ch
        xfer_us = g.page_transfer_us
        per_die_count: dict[int, int] = {}
        for page in pages:
            slot = page % td
            per_die_count[slot] = per_die_count.get(slot, 0) + 1
        finish = t_ready
        die_busy, chan_busy = self._die_busy, self._chan_busy
        for page in pages:
            slot = page % td
            ch = map_ch[slot]
            read_us = self._page_op_us(g.read_us, per_die_count[slot])
            read_done = max(t_ready, die_busy[slot]) + read_us
            xfer_done = max(read_done, chan_busy[ch]) + xfer_us
            die_busy[slot] = read_done
            chan_busy[ch] = xfer_done
            if xfer_done > finish:
                finish = xfer_done
        return finish

    def _program_pages(self, pages: range, t_ready: float) -> float:
        """Drain writes to NAND: channel transfer in, then program.

        Retained scalar walk — the oracle for the columnar program
        paths (:func:`~repro.storage.kernels.program_wave_kernel` and
        the memoised per-shape walks).
        """
        g = self.geometry
        td = self._total_dies
        map_ch = self._map_ch
        xfer_us = g.page_transfer_us
        per_die_count: dict[int, int] = {}
        for page in pages:
            slot = page % td
            per_die_count[slot] = per_die_count.get(slot, 0) + 1
        finish = t_ready
        die_busy, chan_busy = self._die_busy, self._chan_busy
        for page in pages:
            slot = page % td
            ch = map_ch[slot]
            xfer_done = max(t_ready, chan_busy[ch]) + xfer_us
            prog_us = self._page_op_us(g.program_us, per_die_count[slot])
            prog_done = max(xfer_done, die_busy[slot]) + prog_us
            chan_busy[ch] = xfer_done
            die_busy[slot] = prog_done
            if prog_done > finish:
                finish = prog_done
        return finish

    def _buffer_admit(self, nbytes: int, now: float) -> float:
        """Earliest time ``nbytes`` fit in the write buffer.

        Entries whose background drain completed before ``now`` are
        retired first; if space is still short, admission waits for the
        oldest in-flight drains.
        """
        capacity = self.geometry.write_buffer_kb * 1024
        while self._buffered and self._buffered[0][0] <= now:
            __, freed = self._buffered.popleft()
            self._buffered_bytes -= freed
        admit_at = now
        while self._buffered_bytes + nbytes > capacity and self._buffered:
            drain_time, freed = self._buffered.popleft()
            self._buffered_bytes -= freed
            admit_at = max(admit_at, drain_time)
        return admit_at

    # ------------------------------------------------------------------
    # memoised relative-service fast path
    # ------------------------------------------------------------------

    def _rel_read(self, first_page: int, n_pages: int) -> _RelService:
        """:meth:`_read_pages` re-run with ``t_ready = 0`` on idle state."""
        g = self.geometry
        td = self._total_dies
        pages = range(first_page, first_page + n_pages)
        per_die_count: dict[int, int] = {}
        for page in pages:
            slot = page % td
            per_die_count[slot] = per_die_count.get(slot, 0) + 1
        die_rel: dict[int, float] = {}
        chan_rel: dict[int, float] = {}
        walk: list[tuple[int, int, float]] = []
        svc = 0.0
        for page in pages:
            slot = page % td
            ch = self._map_ch[slot]
            read_us = self._page_op_us(g.read_us, per_die_count[slot])
            walk.append((ch, slot, read_us))
            read_done = die_rel.get(slot, 0.0) + read_us
            xfer_done = max(read_done, chan_rel.get(ch, 0.0)) + g.page_transfer_us
            die_rel[slot] = read_done
            chan_rel[ch] = xfer_done
            svc = max(svc, xfer_done)
        return _RelService(
            svc, 0.0, die_rel, chan_rel, first_page % td, n_pages,
            td, g.channels, walk=walk,
        )

    def _rel_program(
        self, first_page: int, n_pages: int, base: float
    ) -> tuple[float, dict[int, float], dict[int, float], list]:
        """:meth:`_program_pages` re-run at relative time ``base`` on idle state."""
        g = self.geometry
        td = self._total_dies
        pages = range(first_page, first_page + n_pages)
        per_die_count: dict[int, int] = {}
        for page in pages:
            slot = page % td
            per_die_count[slot] = per_die_count.get(slot, 0) + 1
        die_rel: dict[int, float] = {}
        chan_rel: dict[int, float] = {}
        walk: list[tuple[int, int, float]] = []
        finish = base
        for page in pages:
            slot = page % td
            ch = self._map_ch[slot]
            xfer_done = max(base, chan_rel.get(ch, 0.0)) + g.page_transfer_us
            prog_us = self._page_op_us(g.program_us, per_die_count[slot])
            walk.append((ch, slot, prog_us))
            prog_done = max(xfer_done, die_rel.get(slot, 0.0)) + prog_us
            chan_rel[ch] = xfer_done
            die_rel[slot] = prog_done
            finish = max(finish, prog_done)
        return finish, die_rel, chan_rel, walk

    def _rel_entry(self, op: OpType, first_page: int, n_pages: int, size: int) -> _RelService:
        """Cached relative service for one request shape."""
        g = self.geometry
        key = (int(op), first_page % self._total_dies, n_pages, size)
        entry = self._rel_cache.get(key)
        if entry is not None:
            return entry
        nbytes = size * SECTOR_BYTES
        if op is OpType.READ:
            entry = self._rel_read(first_page, n_pages)
        else:
            slot = first_page % self._total_dies
            if g.write_buffer_kb > 0 and nbytes <= g.write_buffer_kb * 1024:
                ack_rel = g.buffer_write_us + nbytes / (self.channel.bandwidth_mb_s * 4)
                drain_rel, die_rel, chan_rel, walk = self._rel_program(
                    first_page, n_pages, ack_rel
                )
                entry = _RelService(
                    ack_rel, drain_rel, die_rel, chan_rel, slot, n_pages,
                    self._total_dies, g.channels, walk=walk,
                )
            else:
                finish_rel, die_rel, chan_rel, walk = self._rel_program(first_page, n_pages, 0.0)
                entry = _RelService(
                    finish_rel, 0.0, die_rel, chan_rel, slot, n_pages,
                    self._total_dies, g.channels, walk=walk,
                )
            entry.is_read = False
        entry.nbytes = nbytes
        entry.buffered = 0 < nbytes <= self._buffer_capacity
        if op is OpType.READ:
            entry.busy_read_fn = _make_busy_read(entry, self._xfer_us)
            entry.try_fn = _make_try_fn(entry, entry.busy_read_fn, self._xfer_us)
        else:
            entry.busy_prog_fn = _make_busy_program(entry, self._xfer_us)
            if not entry.buffered:
                entry.try_fn = _make_try_fn(
                    entry, entry.busy_prog_fn, self._xfer_us
                )
        self._rel_cache[key] = entry
        return entry

    def _state_idle_for(self, entry: _RelService, t_ready: float) -> bool:
        """Whether every die/channel this request touches is idle at ``t_ready``.

        Two tiers: a scalar horizon check (no state reads at all), then
        a sparse check over just the touched entries.  Both are safe for
        non-monotone ``t_ready`` (a smaller request at the same submit
        time has a smaller channel delay): the horizon is the global
        running maximum, and the busy lists are always current.
        """
        if t_ready >= self._state_horizon:
            return True
        die_busy = self._die_busy
        for flat, _ in entry.die_items:
            if die_busy[flat] > t_ready:
                return False
        chan_busy = self._chan_busy
        for ch, _ in entry.chan_items:
            if chan_busy[ch] > t_ready:
                return False
        return True

    def _commit_fast(self, entry: _RelService, t_ready: float) -> None:
        """Apply the request's memoised sparse state update; bump the horizon."""
        die_busy = self._die_busy
        for flat, value in entry.die_items:
            die_busy[flat] = t_ready + value
        chan_busy = self._chan_busy
        for ch, value in entry.chan_items:
            chan_busy[ch] = t_ready + value
        horizon = t_ready + entry.horizon
        if horizon > self._state_horizon:
            self._state_horizon = horizon

    def _service(self, op: OpType, lba: int, size: int, t_ready: float) -> tuple[float, float]:
        g = self.geometry
        ps = self._page_sectors
        first_page = lba // ps
        n_pages = (lba + size - 1) // ps - first_page + 1
        key = (int(op), first_page % self._total_dies, n_pages, size)
        entry = self._rel_cache.get(key)
        if entry is None:
            entry = self._rel_entry(op, first_page, n_pages, size)
        if op is OpType.READ:
            # Hot path, inlined: tier-1 horizon check, sparse state
            # write, and the memoised relative finish.
            if t_ready >= self._state_horizon or self._state_idle_for(entry, t_ready):
                die_busy = self._die_busy
                for flat, value in entry.die_items:
                    die_busy[flat] = t_ready + value
                chan_busy = self._chan_busy
                for ch, value in entry.chan_items:
                    chan_busy[ch] = t_ready + value
                horizon = t_ready + entry.horizon
                if horizon > self._state_horizon:
                    self._state_horizon = horizon
                return t_ready, t_ready + entry.svc
            finish = self._read_pages(self._pages_of(lba, size), t_ready)
            self._state_horizon = max(self._state_horizon, finish)
            return t_ready, finish
        nbytes = size * SECTOR_BYTES
        if 0 < nbytes <= self._buffer_capacity:
            # Retire drained buffer entries (same rule _buffer_admit uses).
            while self._buffered and self._buffered[0][0] <= t_ready:
                __, freed = self._buffered.popleft()
                self._buffered_bytes -= freed
            fits = self._buffered_bytes + nbytes <= self._buffer_capacity
            if self._state_idle_for(entry, t_ready) and fits:
                self._buffered.append((t_ready + entry.drain_rel, nbytes))
                self._buffered_bytes += nbytes
                self._commit_fast(entry, t_ready)
                return t_ready, t_ready + entry.svc
            start = self._buffer_admit(nbytes, t_ready)
            ack_done = start + g.buffer_write_us + nbytes / (self.channel.bandwidth_mb_s * 4)
            drain_done = self._program_pages(self._pages_of(lba, size), ack_done)
            self._buffered.append((drain_done, nbytes))
            self._buffered_bytes += nbytes
            self._state_horizon = max(self._state_horizon, drain_done)
            return start, ack_done
        if self._state_idle_for(entry, t_ready):
            self._commit_fast(entry, t_ready)
            return t_ready, t_ready + entry.svc
        finish = self._program_pages(self._pages_of(lba, size), t_ready)
        self._state_horizon = max(self._state_horizon, finish)
        return t_ready, finish

    def supports_batch(self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray) -> bool:
        """Gap-invariant unless buffered writes can occur.

        A buffered write acknowledges early and drains in the
        background, so a later request's latency depends on how much
        wall-clock idle separated them — exactly what the batch
        contract forbids.  Read-only streams (or a buffer-less
        geometry) are safe.
        """
        if self.geometry.write_buffer_kb == 0:
            return True
        # Single materialisation: ``asarray`` is a no-op for ndarray
        # input and one conversion otherwise; the comparison reuses it.
        ops_arr = np.asarray(ops)
        return not bool((ops_arr == int(OpType.WRITE)).any())

    def _service_batch(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray
    ) -> np.ndarray:
        if columnar_enabled():
            return self._service_batch_columnar(ops, lbas, sizes)
        return self._service_batch_scalar(ops, lbas, sizes)

    def _service_batch_scalar(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray
    ) -> np.ndarray:
        """Retained per-request loop — the grouped kernel's oracle."""
        lbas = np.asarray(lbas, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        first, n_pages = page_span(lbas, sizes, self._page_sectors)
        out = np.empty(len(lbas), dtype=np.float64)
        rel_entry = self._rel_entry
        read = OpType.READ
        write = OpType.WRITE
        for i, (op, fp, npg, size) in enumerate(
            zip(np.asarray(ops).tolist(), first.tolist(), n_pages.tolist(), sizes.tolist())
        ):
            out[i] = rel_entry(read if op == 0 else write, fp, npg, size).svc
        return out

    def _service_batch_columnar(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray
    ) -> np.ndarray:
        """Grouped service kernel: evaluate each distinct shape once.

        A request's idle-state service depends only on its
        ``(op, first_page % total_dies, n_pages, size)`` shape, so the
        stream collapses to one memo evaluation per *unique* shape and
        a scatter — subsuming the per-request ``_rel_entry`` loop (and
        its dict lookups) for batch streams.  Bit-identical to
        :meth:`_service_batch_scalar` because both read the same
        memoised entries.
        """
        lbas = np.asarray(lbas, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        first, n_pages = page_span(lbas, sizes, self._page_sectors)
        uniq, inverse = group_shapes(
            np.asarray(ops), first % self._total_dies, n_pages, sizes
        )
        svc = np.empty(len(uniq), dtype=np.float64)
        rel_entry = self._rel_entry
        read = OpType.READ
        write = OpType.WRITE
        for j, (op, slot, npg, size) in enumerate(uniq.tolist()):
            svc[j] = rel_entry(read if op == 0 else write, slot, npg, size).svc
        return svc[inverse]

    # ------------------------------------------------------------------
    # replay-plan kernels (queue-depth event loop fast path)
    # ------------------------------------------------------------------

    def replay_plan(self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray):
        """Fragment plan for the queue-depth event loop (one frag/request).

        Pure — resolves every request's memoised relative-service entry
        up front (grouped by shape) so the event loop can run the
        device's fast paths without per-request key construction, dict
        lookups, or method dispatch.  Plans are content-cached: two
        devices with equal fingerprints replaying the same stream share
        one plan.  ``None`` when the columnar engines are disabled.
        """
        if not columnar_enabled():
            return None
        key = (self.fingerprint(), _stream_digest(ops, lbas, sizes))
        plan = _PLAN_CACHE.get(key)
        if plan is not None:
            return plan
        ops = np.asarray(ops)
        lbas = np.asarray(lbas, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        n = len(lbas)
        first, n_pages = page_span(lbas, sizes, self._page_sectors)
        entries = self._entries_for(ops, first, n_pages, sizes)
        frags = list(zip([0] * n, entries))
        plan = FlashReplayPlan(list(range(n + 1)), frags, array_level=False)
        _plan_cache_put(key, plan)
        return plan

    def _entries_for(
        self, ops: np.ndarray, first: np.ndarray, n_pages: np.ndarray, sizes: np.ndarray
    ) -> list[_RelService]:
        """Per-row memo entries, evaluated once per unique shape."""
        uniq, inverse = group_shapes(ops, first % self._total_dies, n_pages, sizes)
        rel_entry = self._rel_entry
        read = OpType.READ
        write = OpType.WRITE
        uniq_entries = [
            rel_entry(read if op == 0 else write, slot, npg, size)
            for op, slot, npg, size in uniq.tolist()
        ]
        return [uniq_entries[j] for j in inverse.tolist()]

    def _busy_read(self, entry: _RelService, t_ready: float) -> float:
        """Busy-state read walk with the shape's striping prefetched.

        Bit-identical to :meth:`_read_pages` (the retained oracle): the
        memoised walk replays the exact per-page recurrence with the
        modulo/dict work resolved at shape-evaluation time.  Shapes
        with independent pages compute only the exceptional busy
        dies/channels and slice-fill the uniform remainder; large
        extents hand off to the columnar wave kernel.
        """
        if entry.n_pages >= COLUMNAR_MIN_PAGES:
            g = self.geometry
            return read_wave_kernel(
                entry.slot, entry.n_pages, t_ready, self._die_busy, self._chan_busy,
                g.channels, self._total_dies,
                g.read_us, g.page_transfer_us, g.planes_per_die, self.plane_interleave,
            )
        xfer_us = self._xfer_us
        die_busy, chan_busy = self._die_busy, self._chan_busy
        pairs = entry.walk_pairs
        if pairs is not None:
            # Independent pages: an idle page's read_done is exactly
            # fl(t_ready + op) and its transfer fl(v1 + xfer) — the
            # same operands the per-page loop would use.
            v1 = t_ready + entry.walk_op_us
            w1 = v1 + xfer_us
            finish = t_ready
            die_over = None
            chan_over = None
            uniform = False
            for ch, slot in pairs:
                d = die_busy[slot]
                c = chan_busy[ch]
                if d <= t_ready and c <= v1:
                    uniform = True
                    continue
                read_done = (t_ready if t_ready >= d else d) + entry.walk_op_us
                xfer_done = (read_done if read_done >= c else c) + xfer_us
                if die_over is None:
                    die_over = []
                    chan_over = []
                die_over.append((slot, read_done))
                chan_over.append((ch, xfer_done))
                if xfer_done > finish:
                    finish = xfer_done
            if uniform and w1 > finish:
                finish = w1
            a, b, b2 = entry.die_segs
            die_busy[a:b] = [v1] * (b - a)
            if b2:
                die_busy[:b2] = [v1] * b2
            a, b, b2 = entry.chan_segs
            chan_busy[a:b] = [w1] * (b - a)
            if b2:
                chan_busy[:b2] = [w1] * b2
            if die_over is not None:
                for slot, v in die_over:
                    die_busy[slot] = v
                for ch, v in chan_over:
                    chan_busy[ch] = v
            return finish
        finish = t_ready
        for ch, slot, read_us in entry.walk:
            d = die_busy[slot]
            read_done = (t_ready if t_ready >= d else d) + read_us
            c = chan_busy[ch]
            xfer_done = (read_done if read_done >= c else c) + xfer_us
            die_busy[slot] = read_done
            chan_busy[ch] = xfer_done
            if xfer_done > finish:
                finish = xfer_done
        return finish

    def _busy_program(self, entry: _RelService, t_ready: float) -> float:
        """Busy-state program walk; oracle is :meth:`_program_pages`."""
        if entry.n_pages >= COLUMNAR_MIN_PAGES:
            g = self.geometry
            return program_wave_kernel(
                entry.slot, entry.n_pages, t_ready, self._die_busy, self._chan_busy,
                g.channels, self._total_dies,
                g.program_us, g.page_transfer_us, g.planes_per_die, self.plane_interleave,
            )
        xfer_us = self._xfer_us
        die_busy, chan_busy = self._die_busy, self._chan_busy
        pairs = entry.walk_pairs
        if pairs is not None:
            v1 = t_ready + xfer_us
            w1 = v1 + entry.walk_op_us
            finish = t_ready
            die_over = None
            chan_over = None
            uniform = False
            for ch, slot in pairs:
                c = chan_busy[ch]
                d = die_busy[slot]
                if c <= t_ready:
                    if d <= v1:
                        uniform = True
                        continue
                    xfer_done = v1
                else:
                    xfer_done = c + xfer_us
                    if chan_over is None:
                        chan_over = []
                    chan_over.append((ch, xfer_done))
                prog_done = (xfer_done if xfer_done >= d else d) + entry.walk_op_us
                if die_over is None:
                    die_over = []
                die_over.append((slot, prog_done))
                if prog_done > finish:
                    finish = prog_done
            if uniform and w1 > finish:
                finish = w1
            a, b, b2 = entry.chan_segs
            chan_busy[a:b] = [v1] * (b - a)
            if b2:
                chan_busy[:b2] = [v1] * b2
            a, b, b2 = entry.die_segs
            die_busy[a:b] = [w1] * (b - a)
            if b2:
                die_busy[:b2] = [w1] * b2
            if chan_over is not None:
                for ch, v in chan_over:
                    chan_busy[ch] = v
            if die_over is not None:
                for slot, v in die_over:
                    die_busy[slot] = v
            return finish
        finish = t_ready
        for ch, slot, prog_us in entry.walk:
            c = chan_busy[ch]
            xfer_done = (t_ready if t_ready >= c else c) + xfer_us
            d = die_busy[slot]
            prog_done = (xfer_done if xfer_done >= d else d) + prog_us
            chan_busy[ch] = xfer_done
            die_busy[slot] = prog_done
            if prog_done > finish:
                finish = prog_done
        return finish

    def _expected_service(self, op: OpType, size: int, sequential: bool) -> float:
        """Analytic nominal :math:`T_{sdev}` for a request shape.

        Reads: page read + transfers, divided by the parallelism the
        request's page span can exploit.  Buffered writes: the buffer
        acknowledgement path.
        """
        g = self.geometry
        n_pages = max(1, (size + g.page_sectors - 1) // g.page_sectors)
        if op is OpType.READ:
            lanes = min(n_pages, g.channels)
            waves = (n_pages + lanes - 1) // lanes
            return g.read_us + waves * g.page_transfer_us + (waves - 1) * g.read_us
        nbytes = size * SECTOR_BYTES
        if g.write_buffer_kb > 0 and nbytes <= g.write_buffer_kb * 1024:
            return g.buffer_write_us + nbytes / (self.channel.bandwidth_mb_s * 4)
        lanes = min(n_pages, g.total_dies)
        waves = (n_pages + lanes - 1) // lanes
        return waves * (g.page_transfer_us + g.program_us)
