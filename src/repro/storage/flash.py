"""Flash SSD model: channels, dies, planes, page operations, write buffer.

This is one device of the paper's all-flash array: "a single device
consists of 18 channels, 36 dies, and 72 planes" (Section V).  The model
tracks per-channel and per-die availability so that large or
well-striped requests enjoy internal parallelism while single-page
random requests see the raw page latency — the behaviour that gives
flash its characteristic latency/bandwidth profile:

- a read occupies the target die for the page read, then the die's
  channel for the page transfer out;
- a write occupies the channel for the transfer in, then the die for
  the program operation;
- an optional DRAM write buffer acknowledges writes at transfer speed
  and drains programs in the background, throttling when full — this is
  why a modern NVMe drive acks a 4 KB write in tens of microseconds
  while a program takes closer to a millisecond.

Pages are striped over dies round-robin by page number, the classic
channel-first interleaving.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..trace.record import SECTOR_BYTES, OpType
from .channel import PCIE3_X4, InterfaceChannel
from .device import StorageDevice

__all__ = ["FlashGeometry", "FlashSSD"]


class _RelService:
    """Memoised *relative* outcome of one request shape on an idle SSD.

    All values are offsets from the request's ``t_ready``.  Because the
    die/channel striping pattern of a page extent depends only on
    ``first_page % total_dies`` and the page count, one relative
    computation serves every request with the same shape — the replay
    hot path becomes a dict lookup plus a sparse state update.
    """

    __slots__ = ("svc", "drain_rel", "die_items", "chan_items", "horizon")

    def __init__(
        self,
        svc: float,
        drain_rel: float,
        die_rel: dict[tuple[int, int], float],
        chan_rel: dict[int, float],
        dies_per_channel: int,
    ) -> None:
        self.svc = svc
        self.drain_rel = drain_rel
        #: (flat die index, relative busy-until) pairs, page order.
        self.die_items = [
            (ch * dies_per_channel + die, value) for (ch, die), value in die_rel.items()
        ]
        self.chan_items = list(chan_rel.items())
        peak = max(
            max((v for _, v in self.die_items), default=0.0),
            max((v for _, v in self.chan_items), default=0.0),
        )
        self.horizon = max(svc, drain_rel, peak)


#: Relative services depend only on (geometry, plane interleave,
#: channel), all immutable — so every SSD with the same configuration
#: (e.g. the four members of each freshly-built evaluation array)
#: shares one memo and the cache stays warm across device instances.
_SHARED_REL_CACHES: dict[object, dict[tuple[int, int, int, int], "_RelService"]] = {}


@dataclass(frozen=True, slots=True)
class FlashGeometry:
    """Structural and timing parameters of one SSD.

    Defaults approximate a 2015-era NVMe device (the Intel 750 class
    drive named in the paper): 18 channels × 2 dies, 8 KB pages, ~70 µs
    page read, ~900 µs program, 400 MB/s per-channel bus.
    """

    channels: int = 18
    dies_per_channel: int = 2
    planes_per_die: int = 2
    page_kb: int = 8
    read_us: float = 68.0
    program_us: float = 900.0
    channel_mb_s: float = 400.0
    write_buffer_kb: int = 512
    buffer_write_us: float = 18.0

    def __post_init__(self) -> None:
        if min(self.channels, self.dies_per_channel, self.planes_per_die, self.page_kb) <= 0:
            raise ValueError("geometry counts must be positive")
        if min(self.read_us, self.program_us, self.channel_mb_s, self.buffer_write_us) <= 0:
            raise ValueError("timing parameters must be positive")
        if self.write_buffer_kb < 0:
            raise ValueError("write buffer size must be non-negative")

    @property
    def total_dies(self) -> int:
        """Dies across all channels."""
        return self.channels * self.dies_per_channel

    @property
    def total_planes(self) -> int:
        """Planes across all dies."""
        return self.total_dies * self.planes_per_die

    @property
    def page_sectors(self) -> int:
        """Sectors per flash page."""
        return self.page_kb * 1024 // SECTOR_BYTES

    @property
    def page_transfer_us(self) -> float:
        """Time to move one page over a flash channel bus."""
        return self.page_kb * 1024 / (self.channel_mb_s * 1e6) * 1e6

    def die_of_page(self, page: int) -> tuple[int, int]:
        """(channel, die-within-channel) for a page, channel-first striping."""
        die_global = page % self.total_dies
        return die_global % self.channels, die_global // self.channels


class FlashSSD(StorageDevice):
    """One NVMe SSD with internal channel/die parallelism.

    Parameters
    ----------
    geometry:
        Structure and NAND timings; defaults match the paper's device.
    channel:
        Host link; defaults to PCIe 3.0 x4.
    plane_interleave:
        When ``True`` (default), multi-plane commands cut effective
        page-op latency by the plane count for requests spanning
        multiple consecutive pages on one die — a standard NAND
        optimisation the array needs to reach its headline bandwidth.
    """

    def __init__(
        self,
        geometry: FlashGeometry | None = None,
        channel: InterfaceChannel = PCIE3_X4,
        plane_interleave: bool = True,
    ) -> None:
        super().__init__(channel)
        self.geometry = geometry or FlashGeometry()
        self.plane_interleave = plane_interleave
        g = self.geometry
        # Flat lists (index = ch * dies_per_channel + die) rather than
        # NumPy arrays: the service paths read and write one scalar at a
        # time, where list indexing is several times cheaper.
        self._die_busy: list[float] = [0.0] * g.total_dies
        self._chan_busy: list[float] = [0.0] * g.channels
        # Write buffer: FIFO of (drain_complete_time, bytes) entries.
        self._buffered: deque[tuple[float, int]] = deque()
        self._buffered_bytes = 0
        # Fast-path bookkeeping: memoised relative services and the
        # global busy horizon (max of every die/channel/drain stamp).
        self._rel_cache = _SHARED_REL_CACHES.setdefault(
            (self.geometry, plane_interleave, channel), {}
        )
        self._state_horizon = 0.0
        # Scalars hoisted out of the per-request path (geometry is
        # frozen, but its properties recompute on every access).
        self._page_sectors = g.page_sectors
        self._total_dies = g.total_dies
        self._buffer_capacity = g.write_buffer_kb * 1024
        # page % total_dies -> (channel, flat die index) lookup tables.
        self._map_ch = [g.die_of_page(i)[0] for i in range(self._total_dies)]
        self._map_flat = [
            ch * g.dies_per_channel + die
            for ch, die in (g.die_of_page(i) for i in range(self._total_dies))
        ]

    @property
    def name(self) -> str:
        """Human-readable model name."""
        g = self.geometry
        return f"flash({g.channels}ch/{g.total_dies}die/{g.total_planes}pl)"

    def fingerprint(self) -> str:
        return f"{super().fingerprint()}|{self.geometry!r}|interleave={self.plane_interleave}"

    def reset(self) -> None:
        """Cold state: all channels and dies idle, buffer empty.

        The relative-service memo survives resets — it depends only on
        the (immutable) geometry, not on simulator state.
        """
        super().reset()
        g = self.geometry
        self._die_busy = [0.0] * g.total_dies
        self._chan_busy = [0.0] * g.channels
        self._buffered.clear()
        self._buffered_bytes = 0
        self._state_horizon = 0.0

    # ------------------------------------------------------------------

    def _pages_of(self, lba: int, size: int) -> range:
        """Flash pages touched by a sector extent."""
        ps = self._page_sectors
        first = lba // ps
        last = (lba + size - 1) // ps
        return range(first, last + 1)

    def _page_op_us(self, base_us: float, n_pages_on_die: int) -> float:
        """Effective per-page array time with multi-plane interleaving."""
        if not self.plane_interleave or n_pages_on_die <= 1:
            return base_us
        speedup = min(self.geometry.planes_per_die, n_pages_on_die)
        return base_us / speedup

    def _read_pages(self, pages: range, t_ready: float) -> float:
        """Service a read: die array read, then channel transfer out."""
        g = self.geometry
        td = self._total_dies
        map_ch, map_flat = self._map_ch, self._map_flat
        xfer_us = g.page_transfer_us
        per_die_count: dict[int, int] = {}
        for page in pages:
            flat = map_flat[page % td]
            per_die_count[flat] = per_die_count.get(flat, 0) + 1
        finish = t_ready
        die_busy, chan_busy = self._die_busy, self._chan_busy
        for page in pages:
            idx = page % td
            ch = map_ch[idx]
            flat = map_flat[idx]
            read_us = self._page_op_us(g.read_us, per_die_count[flat])
            read_done = max(t_ready, die_busy[flat]) + read_us
            xfer_done = max(read_done, chan_busy[ch]) + xfer_us
            die_busy[flat] = read_done
            chan_busy[ch] = xfer_done
            if xfer_done > finish:
                finish = xfer_done
        return finish

    def _program_pages(self, pages: range, t_ready: float) -> float:
        """Drain writes to NAND: channel transfer in, then program."""
        g = self.geometry
        td = self._total_dies
        map_ch, map_flat = self._map_ch, self._map_flat
        xfer_us = g.page_transfer_us
        per_die_count: dict[int, int] = {}
        for page in pages:
            flat = map_flat[page % td]
            per_die_count[flat] = per_die_count.get(flat, 0) + 1
        finish = t_ready
        die_busy, chan_busy = self._die_busy, self._chan_busy
        for page in pages:
            idx = page % td
            ch = map_ch[idx]
            flat = map_flat[idx]
            xfer_done = max(t_ready, chan_busy[ch]) + xfer_us
            prog_us = self._page_op_us(g.program_us, per_die_count[flat])
            prog_done = max(xfer_done, die_busy[flat]) + prog_us
            chan_busy[ch] = xfer_done
            die_busy[flat] = prog_done
            if prog_done > finish:
                finish = prog_done
        return finish

    def _buffer_admit(self, nbytes: int, now: float) -> float:
        """Earliest time ``nbytes`` fit in the write buffer.

        Entries whose background drain completed before ``now`` are
        retired first; if space is still short, admission waits for the
        oldest in-flight drains.
        """
        capacity = self.geometry.write_buffer_kb * 1024
        while self._buffered and self._buffered[0][0] <= now:
            __, freed = self._buffered.popleft()
            self._buffered_bytes -= freed
        admit_at = now
        while self._buffered_bytes + nbytes > capacity and self._buffered:
            drain_time, freed = self._buffered.popleft()
            self._buffered_bytes -= freed
            admit_at = max(admit_at, drain_time)
        return admit_at

    # ------------------------------------------------------------------
    # memoised relative-service fast path
    # ------------------------------------------------------------------

    def _rel_read(self, first_page: int, n_pages: int) -> _RelService:
        """:meth:`_read_pages` re-run with ``t_ready = 0`` on idle state."""
        g = self.geometry
        pages = range(first_page, first_page + n_pages)
        per_die_count: dict[tuple[int, int], int] = {}
        for page in pages:
            key = g.die_of_page(page)
            per_die_count[key] = per_die_count.get(key, 0) + 1
        die_rel: dict[tuple[int, int], float] = {}
        chan_rel: dict[int, float] = {}
        svc = 0.0
        for page in pages:
            ch, die = g.die_of_page(page)
            read_us = self._page_op_us(g.read_us, per_die_count[(ch, die)])
            read_done = die_rel.get((ch, die), 0.0) + read_us
            xfer_done = max(read_done, chan_rel.get(ch, 0.0)) + g.page_transfer_us
            die_rel[(ch, die)] = read_done
            chan_rel[ch] = xfer_done
            svc = max(svc, xfer_done)
        return _RelService(svc, 0.0, die_rel, chan_rel, g.dies_per_channel)

    def _rel_program(
        self, first_page: int, n_pages: int, base: float
    ) -> tuple[float, dict[tuple[int, int], float], dict[int, float]]:
        """:meth:`_program_pages` re-run at relative time ``base`` on idle state."""
        g = self.geometry
        pages = range(first_page, first_page + n_pages)
        per_die_count: dict[tuple[int, int], int] = {}
        for page in pages:
            key = g.die_of_page(page)
            per_die_count[key] = per_die_count.get(key, 0) + 1
        die_rel: dict[tuple[int, int], float] = {}
        chan_rel: dict[int, float] = {}
        finish = base
        for page in pages:
            ch, die = g.die_of_page(page)
            xfer_done = max(base, chan_rel.get(ch, 0.0)) + g.page_transfer_us
            prog_us = self._page_op_us(g.program_us, per_die_count[(ch, die)])
            prog_done = max(xfer_done, die_rel.get((ch, die), 0.0)) + prog_us
            chan_rel[ch] = xfer_done
            die_rel[(ch, die)] = prog_done
            finish = max(finish, prog_done)
        return finish, die_rel, chan_rel

    def _rel_entry(self, op: OpType, first_page: int, n_pages: int, size: int) -> _RelService:
        """Cached relative service for one request shape."""
        g = self.geometry
        key = (int(op), first_page % self._total_dies, n_pages, size)
        entry = self._rel_cache.get(key)
        if entry is not None:
            return entry
        if op is OpType.READ:
            entry = self._rel_read(first_page, n_pages)
        else:
            nbytes = size * SECTOR_BYTES
            if g.write_buffer_kb > 0 and nbytes <= g.write_buffer_kb * 1024:
                ack_rel = g.buffer_write_us + nbytes / (self.channel.bandwidth_mb_s * 4)
                drain_rel, die_rel, chan_rel = self._rel_program(first_page, n_pages, ack_rel)
                entry = _RelService(ack_rel, drain_rel, die_rel, chan_rel, g.dies_per_channel)
            else:
                finish_rel, die_rel, chan_rel = self._rel_program(first_page, n_pages, 0.0)
                entry = _RelService(finish_rel, 0.0, die_rel, chan_rel, g.dies_per_channel)
        self._rel_cache[key] = entry
        return entry

    def _state_idle_for(self, entry: _RelService, t_ready: float) -> bool:
        """Whether every die/channel this request touches is idle at ``t_ready``.

        Two tiers: a scalar horizon check (no state reads at all), then
        a sparse check over just the touched entries.  Both are safe for
        non-monotone ``t_ready`` (a smaller request at the same submit
        time has a smaller channel delay): the horizon is the global
        running maximum, and the busy lists are always current.
        """
        if t_ready >= self._state_horizon:
            return True
        die_busy = self._die_busy
        for flat, _ in entry.die_items:
            if die_busy[flat] > t_ready:
                return False
        chan_busy = self._chan_busy
        for ch, _ in entry.chan_items:
            if chan_busy[ch] > t_ready:
                return False
        return True

    def _commit_fast(self, entry: _RelService, t_ready: float) -> None:
        """Apply the request's memoised sparse state update; bump the horizon."""
        die_busy = self._die_busy
        for flat, value in entry.die_items:
            die_busy[flat] = t_ready + value
        chan_busy = self._chan_busy
        for ch, value in entry.chan_items:
            chan_busy[ch] = t_ready + value
        horizon = t_ready + entry.horizon
        if horizon > self._state_horizon:
            self._state_horizon = horizon

    def _service(self, op: OpType, lba: int, size: int, t_ready: float) -> tuple[float, float]:
        g = self.geometry
        ps = self._page_sectors
        first_page = lba // ps
        n_pages = (lba + size - 1) // ps - first_page + 1
        key = (int(op), first_page % self._total_dies, n_pages, size)
        entry = self._rel_cache.get(key)
        if entry is None:
            entry = self._rel_entry(op, first_page, n_pages, size)
        if op is OpType.READ:
            # Hot path, inlined: tier-1 horizon check, sparse state
            # write, and the memoised relative finish.
            if t_ready >= self._state_horizon or self._state_idle_for(entry, t_ready):
                die_busy = self._die_busy
                for flat, value in entry.die_items:
                    die_busy[flat] = t_ready + value
                chan_busy = self._chan_busy
                for ch, value in entry.chan_items:
                    chan_busy[ch] = t_ready + value
                horizon = t_ready + entry.horizon
                if horizon > self._state_horizon:
                    self._state_horizon = horizon
                return t_ready, t_ready + entry.svc
            finish = self._read_pages(self._pages_of(lba, size), t_ready)
            self._state_horizon = max(self._state_horizon, finish)
            return t_ready, finish
        nbytes = size * SECTOR_BYTES
        if 0 < nbytes <= self._buffer_capacity:
            # Retire drained buffer entries (same rule _buffer_admit uses).
            while self._buffered and self._buffered[0][0] <= t_ready:
                __, freed = self._buffered.popleft()
                self._buffered_bytes -= freed
            fits = self._buffered_bytes + nbytes <= self._buffer_capacity
            if self._state_idle_for(entry, t_ready) and fits:
                self._buffered.append((t_ready + entry.drain_rel, nbytes))
                self._buffered_bytes += nbytes
                self._commit_fast(entry, t_ready)
                return t_ready, t_ready + entry.svc
            start = self._buffer_admit(nbytes, t_ready)
            ack_done = start + g.buffer_write_us + nbytes / (self.channel.bandwidth_mb_s * 4)
            drain_done = self._program_pages(self._pages_of(lba, size), ack_done)
            self._buffered.append((drain_done, nbytes))
            self._buffered_bytes += nbytes
            self._state_horizon = max(self._state_horizon, drain_done)
            return start, ack_done
        if self._state_idle_for(entry, t_ready):
            self._commit_fast(entry, t_ready)
            return t_ready, t_ready + entry.svc
        finish = self._program_pages(self._pages_of(lba, size), t_ready)
        self._state_horizon = max(self._state_horizon, finish)
        return t_ready, finish

    def supports_batch(self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray) -> bool:
        """Gap-invariant unless buffered writes can occur.

        A buffered write acknowledges early and drains in the
        background, so a later request's latency depends on how much
        wall-clock idle separated them — exactly what the batch
        contract forbids.  Read-only streams (or a buffer-less
        geometry) are safe.
        """
        if self.geometry.write_buffer_kb == 0:
            return True
        return not bool(np.any(np.asarray(ops) == int(OpType.WRITE)))

    def _service_batch(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray
    ) -> np.ndarray:
        g = self.geometry
        lbas = np.asarray(lbas, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        first = lbas // g.page_sectors
        n_pages = (lbas + sizes - 1) // g.page_sectors - first + 1
        out = np.empty(len(lbas), dtype=np.float64)
        rel_entry = self._rel_entry
        read = OpType.READ
        write = OpType.WRITE
        for i, (op, fp, npg, size) in enumerate(
            zip(np.asarray(ops).tolist(), first.tolist(), n_pages.tolist(), sizes.tolist())
        ):
            out[i] = rel_entry(read if op == 0 else write, fp, npg, size).svc
        return out

    def _expected_service(self, op: OpType, size: int, sequential: bool) -> float:
        """Analytic nominal :math:`T_{sdev}` for a request shape.

        Reads: page read + transfers, divided by the parallelism the
        request's page span can exploit.  Buffered writes: the buffer
        acknowledgement path.
        """
        g = self.geometry
        n_pages = max(1, (size + g.page_sectors - 1) // g.page_sectors)
        if op is OpType.READ:
            lanes = min(n_pages, g.channels)
            waves = (n_pages + lanes - 1) // lanes
            return g.read_us + waves * g.page_transfer_us + (waves - 1) * g.read_us
        nbytes = size * SECTOR_BYTES
        if g.write_buffer_kb > 0 and nbytes <= g.write_buffer_kb * 1024:
            return g.buffer_write_us + nbytes / (self.channel.bandwidth_mb_s * 4)
        lanes = min(n_pages, g.total_dies)
        waves = (n_pages + lanes - 1) // lanes
        return waves * (g.page_transfer_us + g.program_us)
