"""Flash SSD model: channels, dies, planes, page operations, write buffer.

This is one device of the paper's all-flash array: "a single device
consists of 18 channels, 36 dies, and 72 planes" (Section V).  The model
tracks per-channel and per-die availability so that large or
well-striped requests enjoy internal parallelism while single-page
random requests see the raw page latency — the behaviour that gives
flash its characteristic latency/bandwidth profile:

- a read occupies the target die for the page read, then the die's
  channel for the page transfer out;
- a write occupies the channel for the transfer in, then the die for
  the program operation;
- an optional DRAM write buffer acknowledges writes at transfer speed
  and drains programs in the background, throttling when full — this is
  why a modern NVMe drive acks a 4 KB write in tens of microseconds
  while a program takes closer to a millisecond.

Pages are striped over dies round-robin by page number, the classic
channel-first interleaving.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..trace.record import SECTOR_BYTES, OpType
from .channel import PCIE3_X4, InterfaceChannel
from .device import StorageDevice
from .kernels import (
    COLUMNAR_MIN_PAGES,
    columnar_enabled,
    group_shapes,
    page_span,
    program_wave_kernel,
    read_wave_kernel,
)

__all__ = ["FlashGeometry", "FlashSSD", "FlashReplayPlan"]


class _RelService:
    """Memoised *relative* outcome of one request shape on an idle SSD.

    All values are offsets from the request's ``t_ready``.  Because the
    die/channel striping pattern of a page extent depends only on
    ``first_page % total_dies`` and the page count, one relative
    computation serves every request with the same shape — the replay
    hot path becomes a dict lookup plus a sparse state update.

    Die and channel state is *slot-indexed* (die ``page % total_dies``,
    channel ``page % channels``), so the slots a shape touches form a
    contiguous circular range.  The entry precomputes that range as at
    most two ``[a, b)`` segments plus, when every touched die (channel)
    lands on the same relative stamp — true for any extent of at most
    ``channels`` pages, i.e. every single-wave shape — the shared
    *uniform* value.  The replay engine's idle probe then collapses to
    ``max()`` over a list slice and its commit to a slice assignment,
    replacing the per-die Python loops that dominated flash replay.
    """

    __slots__ = (
        "svc", "drain_rel", "die_items", "chan_items", "horizon", "walk",
        "slot", "n_pages", "die_segs", "die_uval", "chan_segs", "chan_uval",
        "is_read", "nbytes", "buffered", "walk_pairs", "walk_op_us",
    )

    def __init__(
        self,
        svc: float,
        drain_rel: float,
        die_rel: dict[int, float],
        chan_rel: dict[int, float],
        slot: int,
        n_pages: int,
        total_dies: int,
        channels: int,
        walk: list[tuple[int, int, float]] | None = None,
    ) -> None:
        self.svc = svc
        self.drain_rel = drain_rel
        #: (die slot, relative busy-until) pairs, first-visit page order.
        self.die_items = list(die_rel.items())
        self.chan_items = list(chan_rel.items())
        peak = max(
            max((v for _, v in self.die_items), default=0.0),
            max((v for _, v in self.chan_items), default=0.0),
        )
        self.horizon = max(svc, drain_rel, peak)
        #: Per-page ``(channel, die slot, op_us)`` tuples in page order —
        #: the shape's occupancy walk with the striping modulos and the
        #: multi-plane speedups resolved once, so the replay engine's
        #: busy path can re-run the scalar recurrence without dict or
        #: geometry lookups.
        self.walk = walk
        self.slot = slot
        self.n_pages = n_pages
        # Touched-slot ranges: [a1, b1) and the wrapped [0, b2).
        k = n_pages if n_pages < total_dies else total_dies
        if slot + k <= total_dies:
            self.die_segs = (slot, slot + k, 0)
        else:
            self.die_segs = (slot, total_dies, slot + k - total_dies)
        base_c = slot % channels
        kc = n_pages if n_pages < channels else channels
        if base_c + kc <= channels:
            self.chan_segs = (base_c, base_c + kc, 0)
        else:
            self.chan_segs = (base_c, channels, base_c + kc - channels)
        die_vals = list(die_rel.values())
        self.die_uval = die_vals[0] if die_vals.count(die_vals[0]) == len(die_vals) else None
        chan_vals = list(chan_rel.values())
        self.chan_uval = (
            chan_vals[0] if chan_vals.count(chan_vals[0]) == len(chan_vals) else None
        )
        # Request-shape flags the replay engine needs per fragment;
        # the shape key includes op and size, so they are entry facts.
        # Filled by ``FlashSSD._rel_entry``.
        self.is_read = True
        self.nbytes = 0
        self.buffered = False
        # Uniform-op walk split: ``walk_pairs`` is the (channel, slot)
        # page sequence and ``walk_op_us`` the shared per-page array
        # time, set when every page has the same op time and no die or
        # channel is visited twice (``n_pages <= channels``) so page
        # outcomes are mutually independent.  The busy walks then
        # compute only the exceptional busy slots page by page and
        # bulk-write the uniform remainder with slice assignments.
        if walk and n_pages <= channels and all(w[2] == walk[0][2] for w in walk):
            self.walk_pairs = [(ch, s) for ch, s, __ in walk]
            self.walk_op_us = walk[0][2]
        else:
            self.walk_pairs = None
            self.walk_op_us = None


def _entry_idle_sparse(db: list, cb: list, e: _RelService, t_ready: float) -> bool:
    """Exact sparse idle probe over the entry's contiguous slot ranges.

    Equivalent to ``FlashSSD._state_idle_for`` with the horizon tier
    already checked by the caller: ``True`` iff no touched die or
    channel is busy past ``t_ready``.  ``max()`` over a list slice is
    the same comparison set as the scalar per-item loop.
    """
    a, b, b2 = e.die_segs
    if max(db[a:b]) > t_ready:
        return False
    if b2 and max(db[:b2]) > t_ready:
        return False
    a, b, b2 = e.chan_segs
    if max(cb[a:b]) > t_ready:
        return False
    if b2 and max(cb[:b2]) > t_ready:
        return False
    return True


def _entry_commit(db: list, cb: list, e: _RelService, t_ready: float) -> None:
    """Apply the entry's busy-stamp update; bitwise ``_commit_fast`` twin.

    Uniform single-wave shapes commit with slice assignments (the
    shared stamp ``t_ready + v`` equals what the per-item loop writes,
    same operands); non-uniform shapes fall back to the item loop.
    The caller owns the horizon update (the replay engine mirrors
    member horizons into locals).
    """
    u = e.die_uval
    if u is not None:
        a, b, b2 = e.die_segs
        v = t_ready + u
        db[a:b] = [v] * (b - a)
        if b2:
            db[:b2] = [v] * b2
    else:
        for s, rel in e.die_items:
            db[s] = t_ready + rel
    u = e.chan_uval
    if u is not None:
        a, b, b2 = e.chan_segs
        v = t_ready + u
        cb[a:b] = [v] * (b - a)
        if b2:
            cb[:b2] = [v] * b2
    else:
        for c, rel in e.chan_items:
            cb[c] = t_ready + rel


@dataclass(frozen=True, slots=True)
class FlashReplayPlan:
    """Precomputed per-request fragment columns for queue-depth replay.

    Built by :meth:`FlashSSD.replay_plan` / ``FlashArray.replay_plan``
    from the grouped shape kernels: request ``i`` owns fragments
    ``frags[offsets[i]:offsets[i + 1]]``, each a
    ``(member_index, entry)`` pair ready for the event loop's inlined
    fast paths (the per-fragment op/size facts — ``is_read``,
    ``nbytes``, ``buffered`` — live on the shape-keyed entry).  Member
    indices (not object references) keep the plan valid for *any*
    device with the same fingerprint, so plans are shareable through
    the content cache.  Construction is pure — no simulator state is
    read or consumed.
    """

    offsets: list[int]
    frags: list[tuple]
    #: ``True`` when fragments belong to an array (request start stamp
    #: is the array-level ready time, not a member's admission time).
    array_level: bool

    def members_of(self, device) -> list:
        """Member SSD list the fragment indices refer to, for ``device``."""
        return device.ssds if self.array_level else [device]


#: Content-keyed plan cache: (device fingerprint, stream digest) ->
#: plan.  Entries are geometry-relative (member indices + shared memo
#: entries), so every fingerprint-equal device can consume them.
_PLAN_CACHE: dict[tuple, FlashReplayPlan] = {}
_PLAN_CACHE_MAX = 16


def _plan_cache_put(key: tuple, plan: FlashReplayPlan) -> None:
    """Insert with crude FIFO eviction (plans are cheap to rebuild)."""
    if len(_PLAN_CACHE) >= _PLAN_CACHE_MAX:
        _PLAN_CACHE.pop(next(iter(_PLAN_CACHE)))
    _PLAN_CACHE[key] = plan


def _stream_digest(ops, lbas, sizes) -> bytes:
    """Content hash of a request stream (the plan-cache key half)."""
    h = hashlib.blake2b(digest_size=16)
    for col in (ops, lbas, sizes):
        arr = np.ascontiguousarray(np.asarray(col))
        h.update(str(arr.dtype).encode())
        h.update(arr.tobytes())
    return h.digest()


#: Relative services depend only on (geometry, plane interleave,
#: channel), all immutable — so every SSD with the same configuration
#: (e.g. the four members of each freshly-built evaluation array)
#: shares one memo and the cache stays warm across device instances.
_SHARED_REL_CACHES: dict[object, dict[tuple[int, int, int, int], "_RelService"]] = {}


@dataclass(frozen=True, slots=True)
class FlashGeometry:
    """Structural and timing parameters of one SSD.

    Defaults approximate a 2015-era NVMe device (the Intel 750 class
    drive named in the paper): 18 channels × 2 dies, 8 KB pages, ~70 µs
    page read, ~900 µs program, 400 MB/s per-channel bus.
    """

    channels: int = 18
    dies_per_channel: int = 2
    planes_per_die: int = 2
    page_kb: int = 8
    read_us: float = 68.0
    program_us: float = 900.0
    channel_mb_s: float = 400.0
    write_buffer_kb: int = 512
    buffer_write_us: float = 18.0

    def __post_init__(self) -> None:
        if min(self.channels, self.dies_per_channel, self.planes_per_die, self.page_kb) <= 0:
            raise ValueError("geometry counts must be positive")
        if min(self.read_us, self.program_us, self.channel_mb_s, self.buffer_write_us) <= 0:
            raise ValueError("timing parameters must be positive")
        if self.write_buffer_kb < 0:
            raise ValueError("write buffer size must be non-negative")

    @property
    def total_dies(self) -> int:
        """Dies across all channels."""
        return self.channels * self.dies_per_channel

    @property
    def total_planes(self) -> int:
        """Planes across all dies."""
        return self.total_dies * self.planes_per_die

    @property
    def page_sectors(self) -> int:
        """Sectors per flash page."""
        return self.page_kb * 1024 // SECTOR_BYTES

    @property
    def page_transfer_us(self) -> float:
        """Time to move one page over a flash channel bus."""
        return self.page_kb * 1024 / (self.channel_mb_s * 1e6) * 1e6

    def die_of_page(self, page: int) -> tuple[int, int]:
        """(channel, die-within-channel) for a page, channel-first striping."""
        die_global = page % self.total_dies
        return die_global % self.channels, die_global // self.channels


class FlashSSD(StorageDevice):
    """One NVMe SSD with internal channel/die parallelism.

    Parameters
    ----------
    geometry:
        Structure and NAND timings; defaults match the paper's device.
    channel:
        Host link; defaults to PCIe 3.0 x4.
    plane_interleave:
        When ``True`` (default), multi-plane commands cut effective
        page-op latency by the plane count for requests spanning
        multiple consecutive pages on one die — a standard NAND
        optimisation the array needs to reach its headline bandwidth.
    """

    def __init__(
        self,
        geometry: FlashGeometry | None = None,
        channel: InterfaceChannel = PCIE3_X4,
        plane_interleave: bool = True,
    ) -> None:
        super().__init__(channel)
        self.geometry = geometry or FlashGeometry()
        self.plane_interleave = plane_interleave
        g = self.geometry
        # Flat lists (index = ch * dies_per_channel + die) rather than
        # NumPy arrays: the service paths read and write one scalar at a
        # time, where list indexing is several times cheaper.
        self._die_busy: list[float] = [0.0] * g.total_dies
        self._chan_busy: list[float] = [0.0] * g.channels
        # Write buffer: FIFO of (drain_complete_time, bytes) entries.
        self._buffered: deque[tuple[float, int]] = deque()
        self._buffered_bytes = 0
        # Fast-path bookkeeping: memoised relative services and the
        # global busy horizon (max of every die/channel/drain stamp).
        self._rel_cache = _SHARED_REL_CACHES.setdefault(
            (self.geometry, plane_interleave, channel), {}
        )
        self._state_horizon = 0.0
        # Scalars hoisted out of the per-request path (geometry is
        # frozen, but its properties recompute on every access).
        self._page_sectors = g.page_sectors
        self._total_dies = g.total_dies
        self._buffer_capacity = g.write_buffer_kb * 1024
        # Die/channel state is *slot-indexed*: die slot = page %
        # total_dies, channel = page % channels (total_dies is a
        # multiple of channels, so the two stripings agree).  A page
        # extent therefore touches a contiguous circular slot range —
        # what lets the memoised entries describe their footprint as
        # slices.  ``_map_ch`` caches slot -> channel for the scalar
        # walks (list indexing beats a per-page modulo); the columnar
        # kernels derive the mapping from ``channels`` themselves.
        self._map_ch = (np.arange(self._total_dies, dtype=np.int64) % g.channels).tolist()

    @property
    def name(self) -> str:
        """Human-readable model name."""
        g = self.geometry
        return f"flash({g.channels}ch/{g.total_dies}die/{g.total_planes}pl)"

    def fingerprint(self) -> str:
        return f"{super().fingerprint()}|{self.geometry!r}|interleave={self.plane_interleave}"

    def reset(self) -> None:
        """Cold state: all channels and dies idle, buffer empty.

        The relative-service memo survives resets — it depends only on
        the (immutable) geometry, not on simulator state.
        """
        super().reset()
        g = self.geometry
        self._die_busy = [0.0] * g.total_dies
        self._chan_busy = [0.0] * g.channels
        self._buffered.clear()
        self._buffered_bytes = 0
        self._state_horizon = 0.0

    # ------------------------------------------------------------------

    def _pages_of(self, lba: int, size: int) -> range:
        """Flash pages touched by a sector extent."""
        first, n_pages = page_span(lba, size, self._page_sectors)
        return range(first, first + n_pages)

    def _page_op_us(self, base_us: float, n_pages_on_die: int) -> float:
        """Effective per-page array time with multi-plane interleaving."""
        if not self.plane_interleave or n_pages_on_die <= 1:
            return base_us
        speedup = min(self.geometry.planes_per_die, n_pages_on_die)
        return base_us / speedup

    def _read_pages(self, pages: range, t_ready: float) -> float:
        """Service a read: die array read, then channel transfer out.

        Retained scalar walk — the oracle for the columnar read paths
        (:func:`~repro.storage.kernels.read_wave_kernel` and the
        memoised per-shape walks).
        """
        g = self.geometry
        td = self._total_dies
        map_ch = self._map_ch
        xfer_us = g.page_transfer_us
        per_die_count: dict[int, int] = {}
        for page in pages:
            slot = page % td
            per_die_count[slot] = per_die_count.get(slot, 0) + 1
        finish = t_ready
        die_busy, chan_busy = self._die_busy, self._chan_busy
        for page in pages:
            slot = page % td
            ch = map_ch[slot]
            read_us = self._page_op_us(g.read_us, per_die_count[slot])
            read_done = max(t_ready, die_busy[slot]) + read_us
            xfer_done = max(read_done, chan_busy[ch]) + xfer_us
            die_busy[slot] = read_done
            chan_busy[ch] = xfer_done
            if xfer_done > finish:
                finish = xfer_done
        return finish

    def _program_pages(self, pages: range, t_ready: float) -> float:
        """Drain writes to NAND: channel transfer in, then program.

        Retained scalar walk — the oracle for the columnar program
        paths (:func:`~repro.storage.kernels.program_wave_kernel` and
        the memoised per-shape walks).
        """
        g = self.geometry
        td = self._total_dies
        map_ch = self._map_ch
        xfer_us = g.page_transfer_us
        per_die_count: dict[int, int] = {}
        for page in pages:
            slot = page % td
            per_die_count[slot] = per_die_count.get(slot, 0) + 1
        finish = t_ready
        die_busy, chan_busy = self._die_busy, self._chan_busy
        for page in pages:
            slot = page % td
            ch = map_ch[slot]
            xfer_done = max(t_ready, chan_busy[ch]) + xfer_us
            prog_us = self._page_op_us(g.program_us, per_die_count[slot])
            prog_done = max(xfer_done, die_busy[slot]) + prog_us
            chan_busy[ch] = xfer_done
            die_busy[slot] = prog_done
            if prog_done > finish:
                finish = prog_done
        return finish

    def _buffer_admit(self, nbytes: int, now: float) -> float:
        """Earliest time ``nbytes`` fit in the write buffer.

        Entries whose background drain completed before ``now`` are
        retired first; if space is still short, admission waits for the
        oldest in-flight drains.
        """
        capacity = self.geometry.write_buffer_kb * 1024
        while self._buffered and self._buffered[0][0] <= now:
            __, freed = self._buffered.popleft()
            self._buffered_bytes -= freed
        admit_at = now
        while self._buffered_bytes + nbytes > capacity and self._buffered:
            drain_time, freed = self._buffered.popleft()
            self._buffered_bytes -= freed
            admit_at = max(admit_at, drain_time)
        return admit_at

    # ------------------------------------------------------------------
    # memoised relative-service fast path
    # ------------------------------------------------------------------

    def _rel_read(self, first_page: int, n_pages: int) -> _RelService:
        """:meth:`_read_pages` re-run with ``t_ready = 0`` on idle state."""
        g = self.geometry
        td = self._total_dies
        pages = range(first_page, first_page + n_pages)
        per_die_count: dict[int, int] = {}
        for page in pages:
            slot = page % td
            per_die_count[slot] = per_die_count.get(slot, 0) + 1
        die_rel: dict[int, float] = {}
        chan_rel: dict[int, float] = {}
        walk: list[tuple[int, int, float]] = []
        svc = 0.0
        for page in pages:
            slot = page % td
            ch = self._map_ch[slot]
            read_us = self._page_op_us(g.read_us, per_die_count[slot])
            walk.append((ch, slot, read_us))
            read_done = die_rel.get(slot, 0.0) + read_us
            xfer_done = max(read_done, chan_rel.get(ch, 0.0)) + g.page_transfer_us
            die_rel[slot] = read_done
            chan_rel[ch] = xfer_done
            svc = max(svc, xfer_done)
        return _RelService(
            svc, 0.0, die_rel, chan_rel, first_page % td, n_pages,
            td, g.channels, walk=walk,
        )

    def _rel_program(
        self, first_page: int, n_pages: int, base: float
    ) -> tuple[float, dict[int, float], dict[int, float], list]:
        """:meth:`_program_pages` re-run at relative time ``base`` on idle state."""
        g = self.geometry
        td = self._total_dies
        pages = range(first_page, first_page + n_pages)
        per_die_count: dict[int, int] = {}
        for page in pages:
            slot = page % td
            per_die_count[slot] = per_die_count.get(slot, 0) + 1
        die_rel: dict[int, float] = {}
        chan_rel: dict[int, float] = {}
        walk: list[tuple[int, int, float]] = []
        finish = base
        for page in pages:
            slot = page % td
            ch = self._map_ch[slot]
            xfer_done = max(base, chan_rel.get(ch, 0.0)) + g.page_transfer_us
            prog_us = self._page_op_us(g.program_us, per_die_count[slot])
            walk.append((ch, slot, prog_us))
            prog_done = max(xfer_done, die_rel.get(slot, 0.0)) + prog_us
            chan_rel[ch] = xfer_done
            die_rel[slot] = prog_done
            finish = max(finish, prog_done)
        return finish, die_rel, chan_rel, walk

    def _rel_entry(self, op: OpType, first_page: int, n_pages: int, size: int) -> _RelService:
        """Cached relative service for one request shape."""
        g = self.geometry
        key = (int(op), first_page % self._total_dies, n_pages, size)
        entry = self._rel_cache.get(key)
        if entry is not None:
            return entry
        nbytes = size * SECTOR_BYTES
        if op is OpType.READ:
            entry = self._rel_read(first_page, n_pages)
        else:
            slot = first_page % self._total_dies
            if g.write_buffer_kb > 0 and nbytes <= g.write_buffer_kb * 1024:
                ack_rel = g.buffer_write_us + nbytes / (self.channel.bandwidth_mb_s * 4)
                drain_rel, die_rel, chan_rel, walk = self._rel_program(
                    first_page, n_pages, ack_rel
                )
                entry = _RelService(
                    ack_rel, drain_rel, die_rel, chan_rel, slot, n_pages,
                    self._total_dies, g.channels, walk=walk,
                )
            else:
                finish_rel, die_rel, chan_rel, walk = self._rel_program(first_page, n_pages, 0.0)
                entry = _RelService(
                    finish_rel, 0.0, die_rel, chan_rel, slot, n_pages,
                    self._total_dies, g.channels, walk=walk,
                )
            entry.is_read = False
        entry.nbytes = nbytes
        entry.buffered = 0 < nbytes <= self._buffer_capacity
        self._rel_cache[key] = entry
        return entry

    def _state_idle_for(self, entry: _RelService, t_ready: float) -> bool:
        """Whether every die/channel this request touches is idle at ``t_ready``.

        Two tiers: a scalar horizon check (no state reads at all), then
        a sparse check over just the touched entries.  Both are safe for
        non-monotone ``t_ready`` (a smaller request at the same submit
        time has a smaller channel delay): the horizon is the global
        running maximum, and the busy lists are always current.
        """
        if t_ready >= self._state_horizon:
            return True
        die_busy = self._die_busy
        for flat, _ in entry.die_items:
            if die_busy[flat] > t_ready:
                return False
        chan_busy = self._chan_busy
        for ch, _ in entry.chan_items:
            if chan_busy[ch] > t_ready:
                return False
        return True

    def _commit_fast(self, entry: _RelService, t_ready: float) -> None:
        """Apply the request's memoised sparse state update; bump the horizon."""
        die_busy = self._die_busy
        for flat, value in entry.die_items:
            die_busy[flat] = t_ready + value
        chan_busy = self._chan_busy
        for ch, value in entry.chan_items:
            chan_busy[ch] = t_ready + value
        horizon = t_ready + entry.horizon
        if horizon > self._state_horizon:
            self._state_horizon = horizon

    def _service(self, op: OpType, lba: int, size: int, t_ready: float) -> tuple[float, float]:
        g = self.geometry
        ps = self._page_sectors
        first_page = lba // ps
        n_pages = (lba + size - 1) // ps - first_page + 1
        key = (int(op), first_page % self._total_dies, n_pages, size)
        entry = self._rel_cache.get(key)
        if entry is None:
            entry = self._rel_entry(op, first_page, n_pages, size)
        if op is OpType.READ:
            # Hot path, inlined: tier-1 horizon check, sparse state
            # write, and the memoised relative finish.
            if t_ready >= self._state_horizon or self._state_idle_for(entry, t_ready):
                die_busy = self._die_busy
                for flat, value in entry.die_items:
                    die_busy[flat] = t_ready + value
                chan_busy = self._chan_busy
                for ch, value in entry.chan_items:
                    chan_busy[ch] = t_ready + value
                horizon = t_ready + entry.horizon
                if horizon > self._state_horizon:
                    self._state_horizon = horizon
                return t_ready, t_ready + entry.svc
            finish = self._read_pages(self._pages_of(lba, size), t_ready)
            self._state_horizon = max(self._state_horizon, finish)
            return t_ready, finish
        nbytes = size * SECTOR_BYTES
        if 0 < nbytes <= self._buffer_capacity:
            # Retire drained buffer entries (same rule _buffer_admit uses).
            while self._buffered and self._buffered[0][0] <= t_ready:
                __, freed = self._buffered.popleft()
                self._buffered_bytes -= freed
            fits = self._buffered_bytes + nbytes <= self._buffer_capacity
            if self._state_idle_for(entry, t_ready) and fits:
                self._buffered.append((t_ready + entry.drain_rel, nbytes))
                self._buffered_bytes += nbytes
                self._commit_fast(entry, t_ready)
                return t_ready, t_ready + entry.svc
            start = self._buffer_admit(nbytes, t_ready)
            ack_done = start + g.buffer_write_us + nbytes / (self.channel.bandwidth_mb_s * 4)
            drain_done = self._program_pages(self._pages_of(lba, size), ack_done)
            self._buffered.append((drain_done, nbytes))
            self._buffered_bytes += nbytes
            self._state_horizon = max(self._state_horizon, drain_done)
            return start, ack_done
        if self._state_idle_for(entry, t_ready):
            self._commit_fast(entry, t_ready)
            return t_ready, t_ready + entry.svc
        finish = self._program_pages(self._pages_of(lba, size), t_ready)
        self._state_horizon = max(self._state_horizon, finish)
        return t_ready, finish

    def supports_batch(self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray) -> bool:
        """Gap-invariant unless buffered writes can occur.

        A buffered write acknowledges early and drains in the
        background, so a later request's latency depends on how much
        wall-clock idle separated them — exactly what the batch
        contract forbids.  Read-only streams (or a buffer-less
        geometry) are safe.
        """
        if self.geometry.write_buffer_kb == 0:
            return True
        # Single materialisation: ``asarray`` is a no-op for ndarray
        # input and one conversion otherwise; the comparison reuses it.
        ops_arr = np.asarray(ops)
        return not bool((ops_arr == int(OpType.WRITE)).any())

    def _service_batch(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray
    ) -> np.ndarray:
        if columnar_enabled():
            return self._service_batch_columnar(ops, lbas, sizes)
        return self._service_batch_scalar(ops, lbas, sizes)

    def _service_batch_scalar(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray
    ) -> np.ndarray:
        """Retained per-request loop — the grouped kernel's oracle."""
        lbas = np.asarray(lbas, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        first, n_pages = page_span(lbas, sizes, self._page_sectors)
        out = np.empty(len(lbas), dtype=np.float64)
        rel_entry = self._rel_entry
        read = OpType.READ
        write = OpType.WRITE
        for i, (op, fp, npg, size) in enumerate(
            zip(np.asarray(ops).tolist(), first.tolist(), n_pages.tolist(), sizes.tolist())
        ):
            out[i] = rel_entry(read if op == 0 else write, fp, npg, size).svc
        return out

    def _service_batch_columnar(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray
    ) -> np.ndarray:
        """Grouped service kernel: evaluate each distinct shape once.

        A request's idle-state service depends only on its
        ``(op, first_page % total_dies, n_pages, size)`` shape, so the
        stream collapses to one memo evaluation per *unique* shape and
        a scatter — subsuming the per-request ``_rel_entry`` loop (and
        its dict lookups) for batch streams.  Bit-identical to
        :meth:`_service_batch_scalar` because both read the same
        memoised entries.
        """
        lbas = np.asarray(lbas, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        first, n_pages = page_span(lbas, sizes, self._page_sectors)
        uniq, inverse = group_shapes(
            np.asarray(ops), first % self._total_dies, n_pages, sizes
        )
        svc = np.empty(len(uniq), dtype=np.float64)
        rel_entry = self._rel_entry
        read = OpType.READ
        write = OpType.WRITE
        for j, (op, slot, npg, size) in enumerate(uniq.tolist()):
            svc[j] = rel_entry(read if op == 0 else write, slot, npg, size).svc
        return svc[inverse]

    # ------------------------------------------------------------------
    # replay-plan kernels (queue-depth event loop fast path)
    # ------------------------------------------------------------------

    def replay_plan(self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray):
        """Fragment plan for the queue-depth event loop (one frag/request).

        Pure — resolves every request's memoised relative-service entry
        up front (grouped by shape) so the event loop can run the
        device's fast paths without per-request key construction, dict
        lookups, or method dispatch.  Plans are content-cached: two
        devices with equal fingerprints replaying the same stream share
        one plan.  ``None`` when the columnar engines are disabled.
        """
        if not columnar_enabled():
            return None
        key = (self.fingerprint(), _stream_digest(ops, lbas, sizes))
        plan = _PLAN_CACHE.get(key)
        if plan is not None:
            return plan
        ops = np.asarray(ops)
        lbas = np.asarray(lbas, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        n = len(lbas)
        first, n_pages = page_span(lbas, sizes, self._page_sectors)
        entries = self._entries_for(ops, first, n_pages, sizes)
        frags = list(zip([0] * n, entries))
        plan = FlashReplayPlan(list(range(n + 1)), frags, array_level=False)
        _plan_cache_put(key, plan)
        return plan

    def _entries_for(
        self, ops: np.ndarray, first: np.ndarray, n_pages: np.ndarray, sizes: np.ndarray
    ) -> list[_RelService]:
        """Per-row memo entries, evaluated once per unique shape."""
        uniq, inverse = group_shapes(ops, first % self._total_dies, n_pages, sizes)
        rel_entry = self._rel_entry
        read = OpType.READ
        write = OpType.WRITE
        uniq_entries = [
            rel_entry(read if op == 0 else write, slot, npg, size)
            for op, slot, npg, size in uniq.tolist()
        ]
        return [uniq_entries[j] for j in inverse.tolist()]

    def _busy_read(self, entry: _RelService, t_ready: float) -> float:
        """Busy-state read walk with the shape's striping prefetched.

        Bit-identical to :meth:`_read_pages` (the retained oracle): the
        memoised walk replays the exact per-page recurrence with the
        modulo/dict work resolved at shape-evaluation time.  Shapes
        with independent pages compute only the exceptional busy
        dies/channels and slice-fill the uniform remainder; large
        extents hand off to the columnar wave kernel.
        """
        if entry.n_pages >= COLUMNAR_MIN_PAGES:
            g = self.geometry
            return read_wave_kernel(
                entry.slot, entry.n_pages, t_ready, self._die_busy, self._chan_busy,
                g.channels, self._total_dies,
                g.read_us, g.page_transfer_us, g.planes_per_die, self.plane_interleave,
            )
        xfer_us = self.geometry.page_transfer_us
        die_busy, chan_busy = self._die_busy, self._chan_busy
        pairs = entry.walk_pairs
        if pairs is not None:
            # Independent pages: an idle page's read_done is exactly
            # fl(t_ready + op) and its transfer fl(v1 + xfer) — the
            # same operands the per-page loop would use.
            v1 = t_ready + entry.walk_op_us
            w1 = v1 + xfer_us
            finish = t_ready
            die_over = None
            chan_over = None
            uniform = False
            for ch, slot in pairs:
                d = die_busy[slot]
                c = chan_busy[ch]
                if d <= t_ready and c <= v1:
                    uniform = True
                    continue
                read_done = max(t_ready, d) + entry.walk_op_us
                xfer_done = max(read_done, c) + xfer_us
                if die_over is None:
                    die_over = []
                    chan_over = []
                die_over.append((slot, read_done))
                chan_over.append((ch, xfer_done))
                if xfer_done > finish:
                    finish = xfer_done
            if uniform and w1 > finish:
                finish = w1
            a, b, b2 = entry.die_segs
            die_busy[a:b] = [v1] * (b - a)
            if b2:
                die_busy[:b2] = [v1] * b2
            a, b, b2 = entry.chan_segs
            chan_busy[a:b] = [w1] * (b - a)
            if b2:
                chan_busy[:b2] = [w1] * b2
            if die_over is not None:
                for slot, v in die_over:
                    die_busy[slot] = v
                for ch, v in chan_over:
                    chan_busy[ch] = v
            return finish
        finish = t_ready
        for ch, slot, read_us in entry.walk:
            read_done = max(t_ready, die_busy[slot]) + read_us
            xfer_done = max(read_done, chan_busy[ch]) + xfer_us
            die_busy[slot] = read_done
            chan_busy[ch] = xfer_done
            if xfer_done > finish:
                finish = xfer_done
        return finish

    def _busy_program(self, entry: _RelService, t_ready: float) -> float:
        """Busy-state program walk; oracle is :meth:`_program_pages`."""
        if entry.n_pages >= COLUMNAR_MIN_PAGES:
            g = self.geometry
            return program_wave_kernel(
                entry.slot, entry.n_pages, t_ready, self._die_busy, self._chan_busy,
                g.channels, self._total_dies,
                g.program_us, g.page_transfer_us, g.planes_per_die, self.plane_interleave,
            )
        xfer_us = self.geometry.page_transfer_us
        die_busy, chan_busy = self._die_busy, self._chan_busy
        pairs = entry.walk_pairs
        if pairs is not None:
            v1 = t_ready + xfer_us
            w1 = v1 + entry.walk_op_us
            finish = t_ready
            die_over = None
            chan_over = None
            uniform = False
            for ch, slot in pairs:
                c = chan_busy[ch]
                d = die_busy[slot]
                if c <= t_ready:
                    if d <= v1:
                        uniform = True
                        continue
                    xfer_done = v1
                else:
                    xfer_done = max(t_ready, c) + xfer_us
                    if chan_over is None:
                        chan_over = []
                    chan_over.append((ch, xfer_done))
                prog_done = max(xfer_done, d) + entry.walk_op_us
                if die_over is None:
                    die_over = []
                die_over.append((slot, prog_done))
                if prog_done > finish:
                    finish = prog_done
            if uniform and w1 > finish:
                finish = w1
            a, b, b2 = entry.chan_segs
            chan_busy[a:b] = [v1] * (b - a)
            if b2:
                chan_busy[:b2] = [v1] * b2
            a, b, b2 = entry.die_segs
            die_busy[a:b] = [w1] * (b - a)
            if b2:
                die_busy[:b2] = [w1] * b2
            if chan_over is not None:
                for ch, v in chan_over:
                    chan_busy[ch] = v
            if die_over is not None:
                for slot, v in die_over:
                    die_busy[slot] = v
            return finish
        finish = t_ready
        for ch, slot, prog_us in entry.walk:
            xfer_done = max(t_ready, chan_busy[ch]) + xfer_us
            prog_done = max(xfer_done, die_busy[slot]) + prog_us
            chan_busy[ch] = xfer_done
            die_busy[slot] = prog_done
            if prog_done > finish:
                finish = prog_done
        return finish

    def _expected_service(self, op: OpType, size: int, sequential: bool) -> float:
        """Analytic nominal :math:`T_{sdev}` for a request shape.

        Reads: page read + transfers, divided by the parallelism the
        request's page span can exploit.  Buffered writes: the buffer
        acknowledgement path.
        """
        g = self.geometry
        n_pages = max(1, (size + g.page_sectors - 1) // g.page_sectors)
        if op is OpType.READ:
            lanes = min(n_pages, g.channels)
            waves = (n_pages + lanes - 1) // lanes
            return g.read_us + waves * g.page_transfer_us + (waves - 1) * g.read_us
        nbytes = size * SECTOR_BYTES
        if g.write_buffer_kb > 0 and nbytes <= g.write_buffer_kb * 1024:
            return g.buffer_write_us + nbytes / (self.channel.bandwidth_mb_s * 4)
        lanes = min(n_pages, g.total_dies)
        waves = (n_pages + lanes - 1) // lanes
        return waves * (g.page_transfer_us + g.program_us)
