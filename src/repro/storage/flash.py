"""Flash SSD model: channels, dies, planes, page operations, write buffer.

This is one device of the paper's all-flash array: "a single device
consists of 18 channels, 36 dies, and 72 planes" (Section V).  The model
tracks per-channel and per-die availability so that large or
well-striped requests enjoy internal parallelism while single-page
random requests see the raw page latency — the behaviour that gives
flash its characteristic latency/bandwidth profile:

- a read occupies the target die for the page read, then the die's
  channel for the page transfer out;
- a write occupies the channel for the transfer in, then the die for
  the program operation;
- an optional DRAM write buffer acknowledges writes at transfer speed
  and drains programs in the background, throttling when full — this is
  why a modern NVMe drive acks a 4 KB write in tens of microseconds
  while a program takes closer to a millisecond.

Pages are striped over dies round-robin by page number, the classic
channel-first interleaving.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..trace.record import SECTOR_BYTES, OpType
from .channel import PCIE3_X4, InterfaceChannel
from .device import StorageDevice

__all__ = ["FlashGeometry", "FlashSSD"]


@dataclass(frozen=True, slots=True)
class FlashGeometry:
    """Structural and timing parameters of one SSD.

    Defaults approximate a 2015-era NVMe device (the Intel 750 class
    drive named in the paper): 18 channels × 2 dies, 8 KB pages, ~70 µs
    page read, ~900 µs program, 400 MB/s per-channel bus.
    """

    channels: int = 18
    dies_per_channel: int = 2
    planes_per_die: int = 2
    page_kb: int = 8
    read_us: float = 68.0
    program_us: float = 900.0
    channel_mb_s: float = 400.0
    write_buffer_kb: int = 512
    buffer_write_us: float = 18.0

    def __post_init__(self) -> None:
        if min(self.channels, self.dies_per_channel, self.planes_per_die, self.page_kb) <= 0:
            raise ValueError("geometry counts must be positive")
        if min(self.read_us, self.program_us, self.channel_mb_s, self.buffer_write_us) <= 0:
            raise ValueError("timing parameters must be positive")
        if self.write_buffer_kb < 0:
            raise ValueError("write buffer size must be non-negative")

    @property
    def total_dies(self) -> int:
        """Dies across all channels."""
        return self.channels * self.dies_per_channel

    @property
    def total_planes(self) -> int:
        """Planes across all dies."""
        return self.total_dies * self.planes_per_die

    @property
    def page_sectors(self) -> int:
        """Sectors per flash page."""
        return self.page_kb * 1024 // SECTOR_BYTES

    @property
    def page_transfer_us(self) -> float:
        """Time to move one page over a flash channel bus."""
        return self.page_kb * 1024 / (self.channel_mb_s * 1e6) * 1e6

    def die_of_page(self, page: int) -> tuple[int, int]:
        """(channel, die-within-channel) for a page, channel-first striping."""
        die_global = page % self.total_dies
        return die_global % self.channels, die_global // self.channels


class FlashSSD(StorageDevice):
    """One NVMe SSD with internal channel/die parallelism.

    Parameters
    ----------
    geometry:
        Structure and NAND timings; defaults match the paper's device.
    channel:
        Host link; defaults to PCIe 3.0 x4.
    plane_interleave:
        When ``True`` (default), multi-plane commands cut effective
        page-op latency by the plane count for requests spanning
        multiple consecutive pages on one die — a standard NAND
        optimisation the array needs to reach its headline bandwidth.
    """

    def __init__(
        self,
        geometry: FlashGeometry | None = None,
        channel: InterfaceChannel = PCIE3_X4,
        plane_interleave: bool = True,
    ) -> None:
        super().__init__(channel)
        self.geometry = geometry or FlashGeometry()
        self.plane_interleave = plane_interleave
        g = self.geometry
        self._die_busy = np.zeros((g.channels, g.dies_per_channel), dtype=np.float64)
        self._chan_busy = np.zeros(g.channels, dtype=np.float64)
        # Write buffer: FIFO of (drain_complete_time, bytes) entries.
        self._buffered: deque[tuple[float, int]] = deque()
        self._buffered_bytes = 0

    @property
    def name(self) -> str:
        g = self.geometry
        return f"flash({g.channels}ch/{g.total_dies}die/{g.total_planes}pl)"

    def reset(self) -> None:
        """Cold state: all channels and dies idle, buffer empty."""
        super().reset()
        self._die_busy.fill(0.0)
        self._chan_busy.fill(0.0)
        self._buffered.clear()
        self._buffered_bytes = 0

    # ------------------------------------------------------------------

    def _pages_of(self, lba: int, size: int) -> range:
        """Flash pages touched by a sector extent."""
        g = self.geometry
        first = lba // g.page_sectors
        last = (lba + size - 1) // g.page_sectors
        return range(first, last + 1)

    def _page_op_us(self, base_us: float, n_pages_on_die: int) -> float:
        """Effective per-page array time with multi-plane interleaving."""
        if not self.plane_interleave or n_pages_on_die <= 1:
            return base_us
        speedup = min(self.geometry.planes_per_die, n_pages_on_die)
        return base_us / speedup

    def _read_pages(self, pages: range, t_ready: float) -> float:
        """Service a read: die array read, then channel transfer out."""
        g = self.geometry
        per_die_count: dict[tuple[int, int], int] = {}
        for page in pages:
            key = g.die_of_page(page)
            per_die_count[key] = per_die_count.get(key, 0) + 1
        finish = t_ready
        for page in pages:
            ch, die = g.die_of_page(page)
            read_us = self._page_op_us(g.read_us, per_die_count[(ch, die)])
            read_done = max(t_ready, self._die_busy[ch, die]) + read_us
            xfer_done = max(read_done, self._chan_busy[ch]) + g.page_transfer_us
            self._die_busy[ch, die] = read_done
            self._chan_busy[ch] = xfer_done
            finish = max(finish, xfer_done)
        return finish

    def _program_pages(self, pages: range, t_ready: float) -> float:
        """Drain writes to NAND: channel transfer in, then program."""
        g = self.geometry
        per_die_count: dict[tuple[int, int], int] = {}
        for page in pages:
            key = g.die_of_page(page)
            per_die_count[key] = per_die_count.get(key, 0) + 1
        finish = t_ready
        for page in pages:
            ch, die = g.die_of_page(page)
            xfer_done = max(t_ready, self._chan_busy[ch]) + g.page_transfer_us
            prog_us = self._page_op_us(g.program_us, per_die_count[(ch, die)])
            prog_done = max(xfer_done, self._die_busy[ch, die]) + prog_us
            self._chan_busy[ch] = xfer_done
            self._die_busy[ch, die] = prog_done
            finish = max(finish, prog_done)
        return finish

    def _buffer_admit(self, nbytes: int, now: float) -> float:
        """Earliest time ``nbytes`` fit in the write buffer.

        Entries whose background drain completed before ``now`` are
        retired first; if space is still short, admission waits for the
        oldest in-flight drains.
        """
        capacity = self.geometry.write_buffer_kb * 1024
        while self._buffered and self._buffered[0][0] <= now:
            __, freed = self._buffered.popleft()
            self._buffered_bytes -= freed
        admit_at = now
        while self._buffered_bytes + nbytes > capacity and self._buffered:
            drain_time, freed = self._buffered.popleft()
            self._buffered_bytes -= freed
            admit_at = max(admit_at, drain_time)
        return admit_at

    def _service(self, op: OpType, lba: int, size: int, t_ready: float) -> tuple[float, float]:
        g = self.geometry
        pages = self._pages_of(lba, size)
        if op is OpType.READ:
            finish = self._read_pages(pages, t_ready)
            return t_ready, finish
        nbytes = size * SECTOR_BYTES
        if g.write_buffer_kb > 0 and nbytes <= g.write_buffer_kb * 1024:
            start = self._buffer_admit(nbytes, t_ready)
            ack_done = start + g.buffer_write_us + nbytes / (self.channel.bandwidth_mb_s * 4)
            drain_done = self._program_pages(pages, ack_done)
            self._buffered.append((drain_done, nbytes))
            self._buffered_bytes += nbytes
            return start, ack_done
        finish = self._program_pages(pages, t_ready)
        return t_ready, finish

    def _expected_service(self, op: OpType, size: int, sequential: bool) -> float:
        """Analytic nominal :math:`T_{sdev}` for a request shape.

        Reads: page read + transfers, divided by the parallelism the
        request's page span can exploit.  Buffered writes: the buffer
        acknowledgement path.
        """
        g = self.geometry
        n_pages = max(1, (size + g.page_sectors - 1) // g.page_sectors)
        if op is OpType.READ:
            lanes = min(n_pages, g.channels)
            waves = (n_pages + lanes - 1) // lanes
            return g.read_us + waves * g.page_transfer_us + (waves - 1) * g.read_us
        nbytes = size * SECTOR_BYTES
        if g.write_buffer_kb > 0 and nbytes <= g.write_buffer_kb * 1024:
            return g.buffer_write_us + nbytes / (self.channel.bandwidth_mb_s * 4)
        lanes = min(n_pages, g.total_dies)
        waves = (n_pages + lanes - 1) // lanes
        return waves * (g.page_transfer_us + g.program_us)
