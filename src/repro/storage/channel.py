"""Storage interface (channel) delay model — :math:`T_{cdel}`.

The paper decomposes I/O subsystem latency into the channel delay
:math:`T_{cdel}` (command + data movement over the host interface) and
the device time :math:`T_{sdev}`.  Figure 7b shows :math:`T_{cdel}` is
a few to a few tens of microseconds, differs somewhat between reads and
writes, and barely differs between sequential and random access — so
the model here is: a per-operation fixed overhead plus payload transfer
at the link bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.record import SECTOR_BYTES, OpType

__all__ = ["InterfaceChannel", "SATA_300", "SATA_600", "PCIE3_X4"]


@dataclass(frozen=True, slots=True)
class InterfaceChannel:
    """Host interface model.

    Attributes
    ----------
    name:
        Human-readable link name (``"SATA-600"``, ``"PCIe3 x4"``...).
    bandwidth_mb_s:
        Effective payload bandwidth in MB/s (1 MB = 1e6 bytes).
    read_overhead_us:
        Fixed per-command overhead for reads (protocol + DMA setup).
    write_overhead_us:
        Fixed per-command overhead for writes.
    """

    name: str
    bandwidth_mb_s: float
    read_overhead_us: float
    write_overhead_us: float

    def __post_init__(self) -> None:
        if self.bandwidth_mb_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.read_overhead_us < 0 or self.write_overhead_us < 0:
            raise ValueError("overheads must be non-negative")

    def transfer_us(self, size_sectors: int) -> float:
        """Pure payload transfer time for ``size_sectors`` sectors."""
        if size_sectors < 0:
            raise ValueError("size must be non-negative")
        return size_sectors * SECTOR_BYTES / self.bandwidth_mb_s

    def delay_us(self, op: OpType, size_sectors: int) -> float:
        """:math:`T_{cdel}` for one request: overhead + payload transfer."""
        overhead = self.read_overhead_us if op is OpType.READ else self.write_overhead_us
        return overhead + self.transfer_us(size_sectors)

    def delay_batch_us(self, ops: np.ndarray, sizes: np.ndarray) -> np.ndarray:
        """Vectorised :math:`T_{cdel}` for a whole request stream.

        Element ``i`` equals ``delay_us(ops[i], sizes[i])`` bit-for-bit:
        the same IEEE-754 operations are applied elementwise, so batch
        and scalar replay paths agree exactly.
        """
        ops = np.asarray(ops)
        sizes = np.asarray(sizes, dtype=np.int64)
        if np.any(sizes < 0):
            raise ValueError("size must be non-negative")
        overhead = np.where(
            ops == int(OpType.READ), self.read_overhead_us, self.write_overhead_us
        )
        return overhead + sizes * SECTOR_BYTES / self.bandwidth_mb_s


#: SATA II (3 Gbit/s): the decade-old server interface of the OLD nodes.
SATA_300 = InterfaceChannel(
    name="SATA-300", bandwidth_mb_s=250.0, read_overhead_us=12.0, write_overhead_us=14.0
)

#: SATA III (6 Gbit/s): enterprise disks like the WD Blue calibration drive.
SATA_600 = InterfaceChannel(
    name="SATA-600", bandwidth_mb_s=520.0, read_overhead_us=9.0, write_overhead_us=11.0
)

#: PCI Express 3.0 x4: one NVMe SSD slot of the paper's all-flash array.
PCIE3_X4 = InterfaceChannel(
    name="PCIe3 x4", bandwidth_mb_s=3200.0, read_overhead_us=3.0, write_overhead_us=4.0
)
