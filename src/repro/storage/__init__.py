"""Storage hardware substrate: channels, HDD, flash SSD, all-flash array.

The paper's hardware half replays traces on real devices; here the
devices are simulators with the same observable surface (submit a block
request, get ack and completion stamps back).
"""

from .array import FlashArray
from .channel import PCIE3_X4, SATA_300, SATA_600, InterfaceChannel
from .device import Completion, ConstantLatencyDevice, StorageDevice
from .events import Event, EventQueue, Simulation
from .faults import (
    DegradedRaid1,
    LatencyInflation,
    MidTraceSwitch,
    ServiceFaultWrapper,
    TransientStalls,
)
from .flash import FlashGeometry, FlashReplayPlan, FlashSSD
from .hdd import HDDGeometry, HDDModel
from .kernels import COLUMNAR_MIN_PAGES, columnar_enabled, set_force_scalar
from .mq import MultiQueueDevice
from .raid import Raid0, Raid1
from .smr import SMRModel
from .tiered import TieredHybrid

__all__ = [
    "FlashArray",
    "FlashReplayPlan",
    "COLUMNAR_MIN_PAGES",
    "columnar_enabled",
    "set_force_scalar",
    "PCIE3_X4",
    "SATA_300",
    "SATA_600",
    "InterfaceChannel",
    "Completion",
    "ConstantLatencyDevice",
    "StorageDevice",
    "DegradedRaid1",
    "LatencyInflation",
    "MidTraceSwitch",
    "MultiQueueDevice",
    "ServiceFaultWrapper",
    "SMRModel",
    "TieredHybrid",
    "TransientStalls",
    "Event",
    "EventQueue",
    "Simulation",
    "FlashGeometry",
    "FlashSSD",
    "HDDGeometry",
    "HDDModel",
    "Raid0",
    "Raid1",
]
