"""Storage device abstraction shared by the HDD and flash models.

A device accepts a request at a submit time and reports when the host
interface is free again (``ack``) and when the data is actually on/off
the medium (``finish``).  This two-stamp completion is what lets the
replayer distinguish synchronous submissions (host blocks until
``finish``) from asynchronous ones (host proceeds at ``ack``) — the
distinction at the heart of the paper's Figure 2b timing diagram.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..trace.record import OpType
from .channel import InterfaceChannel

__all__ = ["Completion", "StorageDevice", "ConstantLatencyDevice"]


@dataclass(frozen=True, slots=True)
class Completion:
    """Timing outcome of one submitted request (all times µs).

    Attributes
    ----------
    submit:
        When the host handed the request to the driver.
    start:
        When the device began servicing it (after any queueing).
    ack:
        When the host interface finished the command/data hand-off —
        an asynchronous submitter is free to continue at this point
        (:math:`submit + T_{cdel}` plus any host-side queue wait).
    finish:
        When the medium finished the operation — a synchronous
        submitter resumes here.
    """

    submit: float
    start: float
    ack: float
    finish: float

    def __post_init__(self) -> None:
        if not (self.submit <= self.start <= self.finish):
            raise ValueError("completion stamps out of order (submit <= start <= finish)")
        if self.ack < self.submit:
            raise ValueError("ack precedes submit")

    @property
    def latency(self) -> float:
        """End-to-end service latency ``finish - submit`` (:math:`T_{slat}` + queue wait)."""
        return self.finish - self.submit

    @property
    def device_time(self) -> float:
        """Medium service time ``finish - start`` (:math:`T_{sdev}`)."""
        return self.finish - self.start

    @property
    def queue_wait(self) -> float:
        """Time between channel hand-off and service start ``start - ack``.

        Zero when the device was idle; positive when the request queued
        behind earlier work.
        """
        return max(0.0, self.start - self.ack)


class StorageDevice(abc.ABC):
    """A storage target the replayer can submit block requests to.

    Implementations are *stateful* simulators: submission order matters
    (head position, busy channels, write-buffer occupancy).  Submit
    times must be non-decreasing, matching how a trace replayer walks a
    trace.
    """

    def __init__(self, channel: InterfaceChannel) -> None:
        self.channel = channel
        self._last_submit = float("-inf")

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Human-readable model name."""

    @abc.abstractmethod
    def _service(self, op: OpType, lba: int, size: int, t_ready: float) -> tuple[float, float]:
        """Device-specific service: returns ``(start, finish)``.

        ``t_ready`` is when the command has fully crossed the channel
        and is available to the medium.
        """

    def submit(self, op: OpType, lba: int, size: int, t: float) -> Completion:
        """Submit one request at time ``t`` and return its timing.

        The channel transfer happens first (the host is occupied for
        :math:`T_{cdel}`), then the medium services the request,
        possibly after queueing behind earlier requests.
        """
        if size <= 0:
            raise ValueError("request size must be positive")
        if lba < 0:
            raise ValueError("lba must be non-negative")
        if t < self._last_submit:
            raise ValueError(f"submissions must be time-ordered: {t} < {self._last_submit}")
        self._last_submit = t
        t_cdel = self.channel.delay_us(op, size)
        ack = t + t_cdel
        start, finish = self._service(op, lba, size, ack)
        return Completion(submit=t, start=start, ack=ack, finish=finish)

    def reset(self) -> None:
        """Return the device to its cold state (subclasses extend)."""
        self._last_submit = float("-inf")

    def fingerprint(self) -> str:
        """Stable description of everything that determines behaviour.

        Two devices with equal fingerprints produce identical traces
        for identical request streams (from a cold reset), so the
        fingerprint is safe to fold into trace-cache content keys.
        Subclasses with extra constructor state (geometry, seeds,
        member layout) must extend it.
        """
        return f"{type(self).__qualname__}|{self.name}|{self.channel!r}"

    # ------------------------------------------------------------------
    # batch service API (the vectorised replay engine's device contract)
    # ------------------------------------------------------------------

    #: ``True`` for devices whose queueing is a single FIFO server whose
    #: state is fully described by one "busy until" stamp.  Such devices
    #: admit a closed-form collection recurrence (see
    #: :func:`repro.workloads.generator.collect_trace`).  Combined with
    #: :meth:`service_batch`, the flag also licenses replay under
    #: *queued* arrivals: the single server serialises requests, so
    #: ``_service(t_ready)`` is exactly ``start = max(t_ready, busy);
    #: finish = start + svc`` with the order-determined ``svc`` the
    #: batch call returns — which is what lets the queue-depth replay
    #: engine precompute services for windows deeper than one.
    fifo_single_server: bool = False

    def supports_batch(self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray) -> bool:
        """Whether :meth:`service_batch` can service this exact stream.

        Must be *pure*: no simulator state (RNG, head position, buffer
        occupancy) may be consumed.  A device answers ``False`` whenever
        its per-request latency for the stream would depend on the
        actual submission instants (e.g. background write-buffer drains
        overlapping later requests) rather than on the request order
        alone.
        """
        return False

    def replay_plan(self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray):
        """Precomputed per-request service columns for event-loop replay.

        Devices with internal parallelism (flash, flash arrays) return
        a plan object that resolves every request's fragment fan-out
        and memoised relative-service entries up front, letting the
        queue-depth event loop run the device fast paths inline without
        per-request dispatch.  Must be *pure* (no simulator state
        consumed).  The default is ``None``: the event loop falls back
        to driving :meth:`_service` request by request.
        """
        return None

    def service_batch(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray
    ) -> np.ndarray | None:
        """Vectorised service times for an in-order request stream.

        Contract (the ``service_batch`` device-author contract):

        - Element ``i`` of the returned array is ``finish - start`` for
          request ``i`` when the stream is submitted in order with each
          request arriving at or after the previous request's ``finish``
          (the synchronous-replay precondition, under which the device
          is idle at every arrival).
        - The result must not depend on the actual arrival instants —
          only on the request order.  Devices whose latencies are not
          gap-invariant for this stream return ``None`` *without
          consuming any state*, and the caller falls back to the scalar
          :meth:`submit` path.
        - On success the call consumes the *order-dependent* simulator
          state the equivalent scalar submissions would (RNG draws,
          head position, mirror round-robin).  Timing state
          (busy-until stamps) is left unspecified, since the device
          never learned the arrival instants — so :meth:`reset` before
          calling, and reset again before mixing with :meth:`submit`.
        - Values must match the scalar path bit-for-bit: use the same
          elementwise IEEE-754 operations the scalar ``_service`` does.
        """
        if not self.supports_batch(ops, lbas, sizes):
            return None
        return self._service_batch(ops, lbas, sizes)

    def _service_batch(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray
    ) -> np.ndarray:
        """Batch kernel; only called when :meth:`supports_batch` is true."""
        raise NotImplementedError

    def service_time_us(self, op: OpType, size: int, sequential: bool) -> float:
        """Stateless *expected* :math:`T_{sdev}` for a request shape.

        Used by calibration and verification code that needs the
        device's nominal latency without perturbing simulator state.
        Subclasses override with their analytic model.
        """
        probe = self.__class__.__dict__.get("_expected_service")
        if probe is None:
            raise NotImplementedError
        return probe(self, op, size, sequential)


class ConstantLatencyDevice(StorageDevice):
    """A device that serves every request in a fixed time.

    Exists for tests and for isolating replayer logic from device
    modelling: one request at a time, FIFO, no parallelism.
    """

    def __init__(
        self,
        channel: InterfaceChannel,
        read_us: float = 100.0,
        write_us: float = 100.0,
    ) -> None:
        super().__init__(channel)
        if read_us < 0 or write_us < 0:
            raise ValueError("latencies must be non-negative")
        self.read_us = read_us
        self.write_us = write_us
        self._busy_until = 0.0

    @property
    def name(self) -> str:
        """Human-readable model name."""
        return f"const({self.read_us}/{self.write_us}us)"

    fifo_single_server = True

    def _service(self, op: OpType, lba: int, size: int, t_ready: float) -> tuple[float, float]:
        start = max(t_ready, self._busy_until)
        finish = start + (self.read_us if op is OpType.READ else self.write_us)
        self._busy_until = finish
        return start, finish

    def supports_batch(self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray) -> bool:
        return True

    def _service_batch(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray
    ) -> np.ndarray:
        return np.where(np.asarray(ops) == int(OpType.READ), self.read_us, self.write_us)

    def _expected_service(self, op: OpType, size: int, sequential: bool) -> float:
        return self.read_us if op is OpType.READ else self.write_us

    def reset(self) -> None:
        super().reset()
        self._busy_until = 0.0
