"""Shingled magnetic recording (SMR) disk: append-friendly zoned writes.

Host-managed SMR drives divide the LBA space into zones that must be
written sequentially at a per-zone append pointer; rewriting inside a
shingled zone forces a read-modify-write of the overlapping shingles.
:class:`SMRModel` layers that cost model over the conventional
:class:`~repro.storage.hdd.HDDModel` mechanics: a write that lands
exactly on its zone's append pointer is a plain media write, any other
write pays ``append_penalty_us`` on top.  Reads are unaffected.

The penalty is applied as a *separate* float add after the fused
``mechanical + transfer`` service sum, in both the scalar and batch
paths, so the two engines round identically and the device stays in
the bit-identity matrix.
"""

from __future__ import annotations

import numpy as np

from ..trace.record import OpType
from .channel import SATA_300, InterfaceChannel
from .hdd import HDDGeometry, HDDModel

__all__ = ["SMRModel"]


class SMRModel(HDDModel):
    """HDD with sequential-write zones and a non-append rewrite penalty.

    Parameters
    ----------
    geometry:
        Mechanical description, as for :class:`~repro.storage.hdd.HDDModel`.
    channel:
        Host link; defaults to SATA II like the conventional disk.
    seed:
        Rotational-phase RNG seed.
    zone_mb:
        Zone size; zone ``z`` spans sectors ``[z * zone_sectors,
        (z + 1) * zone_sectors)`` and its append pointer starts at the
        zone base.
    append_penalty_us:
        Extra service time for a write that does not land on its
        zone's append pointer (the read-modify-write of the shingle
        overlap).  The write-back cache is always disabled: a volatile
        cache would reorder the zone-state consumption the penalty
        model depends on.
    """

    def __init__(
        self,
        geometry: HDDGeometry | None = None,
        channel: InterfaceChannel = SATA_300,
        seed: int = 42,
        zone_mb: int = 256,
        append_penalty_us: float = 15000.0,
    ) -> None:
        if zone_mb <= 0:
            raise ValueError("zone size must be positive")
        if append_penalty_us < 0:
            raise ValueError("append penalty must be non-negative")
        super().__init__(geometry=geometry, channel=channel, write_back_cache_kb=0, seed=seed)
        self.zone_mb = int(zone_mb)
        self.zone_sectors = self.zone_mb * 2048  # 1 MB = 2048 x 512 B sectors
        self.append_penalty_us = float(append_penalty_us)
        self._zone_append: dict[int, int] = {}

    @property
    def name(self) -> str:
        """Human-readable model name."""
        return f"smr({self.geometry.rpm:.0f}rpm/{self.zone_mb}MB zones)"

    def fingerprint(self) -> str:
        return (
            f"{super().fingerprint()}|zone_mb={self.zone_mb}"
            f"|penalty={self.append_penalty_us!r}"
        )

    def reset(self) -> None:
        """Cold state: every zone's append pointer back at its base."""
        super().reset()
        self._zone_append = {}

    def _write_penalty(self, lba: int, size: int) -> float:
        """Penalty for this write; advances the zone append pointer.

        Consumes order-dependent zone state, so the scalar and batch
        paths must call it for writes in the same stream order.
        """
        zone = lba // self.zone_sectors
        pointer = self._zone_append.get(zone, zone * self.zone_sectors)
        self._zone_append[zone] = lba + size
        return 0.0 if lba == pointer else self.append_penalty_us

    def _service(self, op: OpType, lba: int, size: int, t_ready: float) -> tuple[float, float]:
        sequential = lba == self._last_end_lba
        start = max(t_ready, self._busy_until)
        transfer = size * self.geometry.transfer_us_per_sector
        # Same fused (mechanical + transfer) add as the conventional
        # disk; the zone penalty is a second, separate add so the batch
        # path can reproduce it elementwise.
        svc = self._mechanical_us(lba, sequential) + transfer
        if op is OpType.WRITE:
            penalty = self._write_penalty(lba, size)
            if penalty:
                svc = svc + penalty
        finish = start + svc
        self._busy_until = finish
        self._head_cylinder = self.geometry.cylinder_of(lba + size - 1)
        self._last_end_lba = lba + size
        return start, finish

    def _service_batch(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray
    ) -> np.ndarray:
        """Vectorised mechanics plus a scalar zone-state walk.

        The seek/rotation/transfer columns come from the conventional
        disk's kernel (bit-identical to its scalar path); the append
        pointers are then consumed write-by-write in stream order —
        zone state is a dict walk no vector form pays for — adding the
        penalty with the same ``svc + penalty`` float add the scalar
        path performs.
        """
        svc = super()._service_batch(ops, lbas, sizes)
        ops_l = np.asarray(ops).tolist()
        lbas_l = np.asarray(lbas, dtype=np.int64).tolist()
        sizes_l = np.asarray(sizes, dtype=np.int64).tolist()
        write = int(OpType.WRITE)
        for i in range(len(ops_l)):
            if ops_l[i] == write:
                penalty = self._write_penalty(lbas_l[i], sizes_l[i])
                if penalty:
                    svc[i] = svc[i] + penalty
        return svc

    def _expected_service(self, op: OpType, size: int, sequential: bool) -> float:
        """Conventional-disk mean, plus the penalty for random writes."""
        base = HDDModel._expected_service(self, op, size, sequential)
        if op is OpType.WRITE and not sequential:
            return base + self.append_penalty_us
        return base
