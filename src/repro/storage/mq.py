"""Multi-queue front-end: per-queue FIFO submission over a device.

NVMe hosts drive a device through multiple submission queues; commands
within one queue are fetched in order, while queues progress
independently.  :class:`MultiQueueDevice` models the host-visible half
of that: requests are assigned to ``n_queues`` submission queues round
robin, and a request may not reach the wrapped device before the
previous request *of its queue* has completed — the per-queue FIFO gate.
The wrapped device (typically a :class:`~repro.storage.flash.FlashSSD`
die array) still provides all cross-queue parallelism.

The gate yields the ordering invariant the fault property suite checks:
completions within one queue are monotone in submission order, even
when the wrapped device is reconfigured mid-trace by a
:class:`~repro.storage.faults.MidTraceSwitch` — which is why registry
``nvme_mq`` devices place the switch *inside* the queue front-end.
"""

from __future__ import annotations

import numpy as np

from ..trace.record import OpType
from .channel import InterfaceChannel
from .device import StorageDevice

__all__ = ["MultiQueueDevice"]


class MultiQueueDevice(StorageDevice):
    """``n_queues`` round-robin FIFO submission queues over ``inner``.

    Request ``i`` is assigned to queue ``i % n_queues`` and becomes
    ready for the wrapped device at
    ``max(t_ready, last completion of its queue)``.
    """

    fifo_single_server = False

    def __init__(
        self,
        inner: StorageDevice,
        n_queues: int = 8,
        channel: InterfaceChannel | None = None,
    ) -> None:
        if n_queues < 1:
            raise ValueError("a multi-queue device needs at least one queue")
        super().__init__(channel if channel is not None else inner.channel)
        self.inner = inner
        self.n_queues = int(n_queues)
        self._queue_busy = [0.0] * self.n_queues
        self._index = 0

    @property
    def name(self) -> str:
        """Human-readable model name."""
        return f"mq{self.n_queues}({self.inner.name})"

    def fingerprint(self) -> str:
        return f"{super().fingerprint()}|queues={self.n_queues}|inner={self.inner.fingerprint()}"

    def reset(self) -> None:
        """Cold state: wrapped device reset, all queues idle."""
        super().reset()
        self.inner.reset()
        self._queue_busy = [0.0] * self.n_queues
        self._index = 0

    def _service(self, op: OpType, lba: int, size: int, t_ready: float) -> tuple[float, float]:
        queue = self._index % self.n_queues
        self._index += 1
        gate = self._queue_busy[queue]
        t_eff = t_ready if t_ready >= gate else gate
        start, finish = self.inner._service(op, lba, size, t_eff)
        self._queue_busy[queue] = finish
        return start, finish

    def supports_batch(self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray) -> bool:
        """Gap-invariant when the wrapped device is.

        Under the batch contract every request arrives after the
        previous request's finish, so every queue is idle at every
        arrival and the gate never engages — the stream prices exactly
        as the wrapped device's.
        """
        return self.inner.supports_batch(ops, lbas, sizes)

    def service_batch(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray
    ) -> np.ndarray | None:
        # Single-pass delegation; only the queue-assignment order state
        # advances (timing state is unspecified after a batch call).
        svc = self.inner.service_batch(ops, lbas, sizes)
        if svc is not None:
            self._index += len(np.asarray(ops))
        return svc

    def replay_plan(self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray):
        """Always ``None``: the fragment-plan event loop cannot express
        the per-queue gate (a request's ready time depends on a prior
        completion chosen by queue index, not window order), so
        queue-depth replay drives :meth:`_service` directly.
        """
        return None

    def _expected_service(self, op: OpType, size: int, sequential: bool) -> float:
        """Wrapped device's analytic mean (queues add no service time)."""
        return self.inner.service_time_us(op, size, sequential)
