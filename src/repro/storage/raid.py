"""RAID layer over member devices.

"In MSRC, all workloads contain specific device-level information such
as the type of RAID" (Section V) — the Cambridge volumes sat on RAID
groups, so a faithful OLD node for those traces is a disk array, not a
single spindle.  Two classic levels are modelled:

- :class:`Raid0` — striping; an extent is chopped at stripe boundaries
  and fragments are serviced concurrently by their members;
- :class:`Raid1` — mirroring; reads go to the member that can start
  earliest, writes must land on every member.

Both are :class:`~repro.storage.device.StorageDevice` implementations,
so traces can be collected on them and reconstructions can target them
like any other device.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from ..trace.record import OpType
from .channel import InterfaceChannel
from .device import StorageDevice

__all__ = ["Raid0", "Raid1"]


class _RaidBase(StorageDevice):
    """Shared plumbing: member management and reset."""

    def __init__(self, members: Sequence[StorageDevice], channel: InterfaceChannel) -> None:
        if not members:
            raise ValueError("a RAID group needs at least one member")
        super().__init__(channel)
        self.members = list(members)

    def reset(self) -> None:
        super().reset()
        for member in self.members:
            member.reset()


class Raid0(_RaidBase):
    """Striped array (no redundancy).

    Parameters
    ----------
    members:
        Member devices (commonly :class:`~repro.storage.hdd.HDDModel`).
    stripe_kb:
        Stripe unit; stripe ``i`` lives on member ``i mod n``.
    channel:
        Host-side link of the array controller; defaults to the first
        member's channel model.
    """

    def __init__(
        self,
        members: Sequence[StorageDevice],
        stripe_kb: int = 64,
        channel: InterfaceChannel | None = None,
    ) -> None:
        if stripe_kb <= 0:
            raise ValueError("stripe unit must be positive")
        if not members:
            raise ValueError("a RAID group needs at least one member")
        super().__init__(members, channel if channel is not None else members[0].channel)
        self.stripe_sectors = stripe_kb * 2

    @property
    def name(self) -> str:
        return f"raid0({len(self.members)}x {self.members[0].name})"

    def _fragments(self, lba: int, size: int) -> list[tuple[int, int, int]]:
        """``(member_index, local_lba, local_size)`` per stripe chunk."""
        out = []
        cursor, remaining = lba, size
        n = len(self.members)
        while remaining > 0:
            stripe = cursor // self.stripe_sectors
            within = cursor - stripe * self.stripe_sectors
            chunk = min(remaining, self.stripe_sectors - within)
            # Local address: collapse the stripe round-robin so member
            # address spaces stay dense (and sequential streams remain
            # sequential per member).
            local = (stripe // n) * self.stripe_sectors + within
            out.append((stripe % n, local, chunk))
            cursor += chunk
            remaining -= chunk
        return out

    def _service(self, op: OpType, lba: int, size: int, t_ready: float) -> tuple[float, float]:
        finish = t_ready
        for member_index, local_lba, local_size in self._fragments(lba, size):
            __, frag_finish = self.members[member_index]._service(op, local_lba, local_size, t_ready)
            finish = max(finish, frag_finish)
        return t_ready, finish


class Raid1(_RaidBase):
    """Mirrored pair (or wider mirror set).

    Reads are dispatched to a single member chosen by ``read_policy``
    (default: strict alternation, the common round-robin balancer);
    writes are broadcast and complete when the slowest member finishes.
    """

    def __init__(
        self,
        members: Sequence[StorageDevice],
        channel: InterfaceChannel | None = None,
        read_policy: Callable[[int, int], int] | None = None,
    ) -> None:
        if len(members) < 2:
            raise ValueError("a mirror needs at least two members")
        super().__init__(members, channel if channel is not None else members[0].channel)
        self._read_counter = 0
        self._read_policy = read_policy

    @property
    def name(self) -> str:
        return f"raid1({len(self.members)}x {self.members[0].name})"

    def reset(self) -> None:
        super().reset()
        self._read_counter = 0

    def _pick_reader(self, lba: int) -> int:
        if self._read_policy is not None:
            return self._read_policy(lba, len(self.members)) % len(self.members)
        member = self._read_counter % len(self.members)
        self._read_counter += 1
        return member

    def _service(self, op: OpType, lba: int, size: int, t_ready: float) -> tuple[float, float]:
        if op is OpType.READ:
            member = self._pick_reader(lba)
            __, finish = self.members[member]._service(op, lba, size, t_ready)
            return t_ready, finish
        finish = t_ready
        for member in self.members:
            __, member_finish = member._service(op, lba, size, t_ready)
            finish = max(finish, member_finish)
        return t_ready, finish
