"""RAID layer over member devices.

"In MSRC, all workloads contain specific device-level information such
as the type of RAID" (Section V) — the Cambridge volumes sat on RAID
groups, so a faithful OLD node for those traces is a disk array, not a
single spindle.  Two classic levels are modelled:

- :class:`Raid0` — striping; an extent is chopped at stripe boundaries
  and fragments are serviced concurrently by their members;
- :class:`Raid1` — mirroring; reads go to the member that can start
  earliest, writes must land on every member.

Both are :class:`~repro.storage.device.StorageDevice` implementations,
so traces can be collected on them and reconstructions can target them
like any other device.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from ..trace.record import OpType
from .channel import InterfaceChannel
from .device import StorageDevice
from .kernels import columnar_enabled

__all__ = ["Raid0", "Raid1"]


def _scatter_max(
    out: np.ndarray, member_svcs: list[tuple[list[int], np.ndarray]]
) -> np.ndarray:
    """Combine per-member fragment services into per-request maxima."""
    for request_indices, svc in member_svcs:
        if len(request_indices):
            np.maximum.at(out, np.asarray(request_indices, dtype=np.intp), svc)
    return out


class _RaidBase(StorageDevice):
    """Shared plumbing: member management and reset."""

    def __init__(self, members: Sequence[StorageDevice], channel: InterfaceChannel) -> None:
        if not members:
            raise ValueError("a RAID group needs at least one member")
        super().__init__(channel)
        self.members = list(members)

    def reset(self) -> None:
        super().reset()
        for member in self.members:
            member.reset()

    def fingerprint(self) -> str:
        stripe = getattr(self, "stripe_sectors", None)
        members = ";".join(member.fingerprint() for member in self.members)
        return f"{super().fingerprint()}|stripe={stripe}|members=[{members}]"


class Raid0(_RaidBase):
    """Striped array (no redundancy).

    Parameters
    ----------
    members:
        Member devices (commonly :class:`~repro.storage.hdd.HDDModel`).
    stripe_kb:
        Stripe unit; stripe ``i`` lives on member ``i mod n``.
    channel:
        Host-side link of the array controller; defaults to the first
        member's channel model.
    """

    def __init__(
        self,
        members: Sequence[StorageDevice],
        stripe_kb: int = 64,
        channel: InterfaceChannel | None = None,
    ) -> None:
        if stripe_kb <= 0:
            raise ValueError("stripe unit must be positive")
        if not members:
            raise ValueError("a RAID group needs at least one member")
        super().__init__(members, channel if channel is not None else members[0].channel)
        self.stripe_sectors = stripe_kb * 2

    @property
    def name(self) -> str:
        """Human-readable model name."""
        return f"raid0({len(self.members)}x {self.members[0].name})"

    def _fragments(self, lba: int, size: int) -> list[tuple[int, int, int]]:
        """``(member_index, local_lba, local_size)`` per stripe chunk."""
        out = []
        cursor, remaining = lba, size
        n = len(self.members)
        while remaining > 0:
            stripe = cursor // self.stripe_sectors
            within = cursor - stripe * self.stripe_sectors
            chunk = min(remaining, self.stripe_sectors - within)
            # Local address: collapse the stripe round-robin so member
            # address spaces stay dense (and sequential streams remain
            # sequential per member).
            local = (stripe // n) * self.stripe_sectors + within
            out.append((stripe % n, local, chunk))
            cursor += chunk
            remaining -= chunk
        return out

    def _service(self, op: OpType, lba: int, size: int, t_ready: float) -> tuple[float, float]:
        finish = t_ready
        for member_index, local_lba, local_size in self._fragments(lba, size):
            __, frag_finish = self.members[member_index]._service(op, local_lba, local_size, t_ready)
            finish = max(finish, frag_finish)
        return t_ready, finish

    def _member_streams(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray
    ) -> list[tuple] | None:
        """Per-member ``(request_idx, ops, lbas, sizes)`` fragment streams.

        ``None`` when some extent spans more stripes than there are
        members — its same-member fragments would queue behind each
        other, breaking the max-of-independent-fragments combination.
        """
        if columnar_enabled():
            return self._member_streams_columnar(ops, lbas, sizes)
        return self._member_streams_scalar(ops, lbas, sizes)

    def _member_streams_scalar(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray
    ) -> list[tuple[list[int], list[int], list[int], list[int]]] | None:
        """Retained per-request stream builder — the columnar oracle."""
        n_members = len(self.members)
        streams: list[tuple[list[int], list[int], list[int], list[int]]] = [
            ([], [], [], []) for _ in range(n_members)
        ]
        ops_l = np.asarray(ops).tolist()
        lbas_l = np.asarray(lbas, dtype=np.int64).tolist()
        sizes_l = np.asarray(sizes, dtype=np.int64).tolist()
        for i in range(len(ops_l)):
            frags = self._fragments(lbas_l[i], sizes_l[i])
            if len(frags) > n_members:
                return None
            for member_index, local_lba, local_size in frags:
                idx, f_ops, f_lbas, f_sizes = streams[member_index]
                idx.append(i)
                f_ops.append(ops_l[i])
                f_lbas.append(local_lba)
                f_sizes.append(local_size)
        return streams

    def _member_streams_columnar(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray
    ) -> list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] | None:
        """Stripe fan-out as index arithmetic (one pass per member).

        Produces the same per-member streams as the scalar walk —
        fragments in request order, stripe round-robin collapsed into
        dense member addresses — built from flat fragment columns and
        boolean masks instead of per-request list appends.
        """
        n_members = len(self.members)
        ss = self.stripe_sectors
        ops_arr = np.asarray(ops)
        lbas = np.asarray(lbas, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        n = len(lbas)
        stripe0 = lbas // ss
        spans = (lbas + sizes - 1) // ss - stripe0 + 1
        if n and int(spans.max()) > n_members:
            return None
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(spans, out=offsets[1:])
        total = int(offsets[-1])
        req = np.repeat(np.arange(n, dtype=np.int64), spans)
        k = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], spans)
        frag_stripe = stripe0[req] + k
        frag_start = np.maximum(lbas[req], frag_stripe * ss)
        frag_end = np.minimum((lbas + sizes)[req], (frag_stripe + 1) * ss)
        within = frag_start - frag_stripe * ss
        local = (frag_stripe // n_members) * ss + within
        member = frag_stripe % n_members
        ops_f = ops_arr[req]
        frag_size = frag_end - frag_start
        streams = []
        for m in range(n_members):
            sel = member == m
            streams.append((req[sel], ops_f[sel], local[sel], frag_size[sel]))
        return streams

    def supports_batch(self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray) -> bool:
        streams = self._member_streams(ops, lbas, sizes)
        if streams is None:
            return False
        return all(
            member.supports_batch(
                np.asarray(s[1], dtype=np.int8),
                np.asarray(s[2], dtype=np.int64),
                np.asarray(s[3], dtype=np.int64),
            )
            for member, s in zip(self.members, streams)
        )

    def service_batch(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray
    ) -> np.ndarray | None:
        # Overrides the gate-then-price split so the fragment streams
        # are computed once, not once per phase.
        streams = self._member_streams(ops, lbas, sizes)
        if streams is None:
            return None
        member_streams = [
            (
                s[0],
                np.asarray(s[1], dtype=np.int8),
                np.asarray(s[2], dtype=np.int64),
                np.asarray(s[3], dtype=np.int64),
            )
            for s in streams
        ]
        if not all(
            member.supports_batch(f_ops, f_lbas, f_sizes)
            for member, (__, f_ops, f_lbas, f_sizes) in zip(self.members, member_streams)
        ):
            return None
        member_svcs = [
            (idx, member._service_batch(f_ops, f_lbas, f_sizes))
            for member, (idx, f_ops, f_lbas, f_sizes) in zip(self.members, member_streams)
        ]
        return _scatter_max(np.zeros(len(ops), dtype=np.float64), member_svcs)


class Raid1(_RaidBase):
    """Mirrored pair (or wider mirror set).

    Reads are dispatched to a single member chosen by ``read_policy``
    (default: strict alternation, the common round-robin balancer);
    writes are broadcast and complete when the slowest member finishes.
    """

    def __init__(
        self,
        members: Sequence[StorageDevice],
        channel: InterfaceChannel | None = None,
        read_policy: Callable[[int, int], int] | None = None,
    ) -> None:
        if len(members) < 2:
            raise ValueError("a mirror needs at least two members")
        super().__init__(members, channel if channel is not None else members[0].channel)
        self._read_counter = 0
        self._read_policy = read_policy

    @property
    def name(self) -> str:
        """Human-readable model name."""
        return f"raid1({len(self.members)}x {self.members[0].name})"

    def reset(self) -> None:
        super().reset()
        self._read_counter = 0

    def _pick_reader(self, lba: int) -> int:
        if self._read_policy is not None:
            return self._read_policy(lba, len(self.members)) % len(self.members)
        member = self._read_counter % len(self.members)
        self._read_counter += 1
        return member

    def _service(self, op: OpType, lba: int, size: int, t_ready: float) -> tuple[float, float]:
        if op is OpType.READ:
            member = self._pick_reader(lba)
            __, finish = self.members[member]._service(op, lba, size, t_ready)
            return t_ready, finish
        finish = t_ready
        for member in self.members:
            __, member_finish = member._service(op, lba, size, t_ready)
            finish = max(finish, member_finish)
        return t_ready, finish

    def _member_streams(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray, counter: int
    ) -> list[tuple]:
        """Per-member substreams: each read on its chosen mirror, writes on all."""
        # A custom read policy is an arbitrary Python callable, so only
        # the default round-robin balancer has a columnar expression.
        if columnar_enabled() and self._read_policy is None:
            return self._member_streams_columnar(ops, lbas, sizes, counter)
        return self._member_streams_scalar(ops, lbas, sizes, counter)

    def _member_streams_scalar(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray, counter: int
    ) -> list[tuple[list[int], list[int], list[int], list[int]]]:
        """Retained per-request stream builder — the columnar oracle."""
        n_members = len(self.members)
        streams: list[tuple[list[int], list[int], list[int], list[int]]] = [
            ([], [], [], []) for _ in range(n_members)
        ]
        ops_l = np.asarray(ops).tolist()
        lbas_l = np.asarray(lbas, dtype=np.int64).tolist()
        sizes_l = np.asarray(sizes, dtype=np.int64).tolist()
        read = int(OpType.READ)
        for i in range(len(ops_l)):
            if ops_l[i] == read:
                if self._read_policy is not None:
                    member = self._read_policy(lbas_l[i], n_members) % n_members
                else:
                    member = counter % n_members
                    counter += 1
                targets: tuple[int, ...] = (member,)
            else:
                targets = tuple(range(n_members))
            for member_index in targets:
                idx, f_ops, f_lbas, f_sizes = streams[member_index]
                idx.append(i)
                f_ops.append(ops_l[i])
                f_lbas.append(lbas_l[i])
                f_sizes.append(sizes_l[i])
        return streams

    def _member_streams_columnar(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray, counter: int
    ) -> list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Mirror fan-out as index arithmetic (round-robin policy only).

        Read ``r`` (in stream order) lands on member
        ``(counter + r) % n`` — the strict-alternation balancer as a
        cumulative count — and writes broadcast to every member, all
        selected with boolean masks that preserve request order.
        """
        n_members = len(self.members)
        ops_arr = np.asarray(ops)
        lbas = np.asarray(lbas, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        idx = np.arange(len(lbas), dtype=np.int64)
        is_read = ops_arr == int(OpType.READ)
        chosen = (counter + np.cumsum(is_read) - 1) % n_members
        streams = []
        for m in range(n_members):
            sel = ~is_read | (chosen == m)
            streams.append((idx[sel], ops_arr[sel], lbas[sel], sizes[sel]))
        return streams

    def supports_batch(self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray) -> bool:
        streams = self._member_streams(ops, lbas, sizes, self._read_counter)
        return all(
            member.supports_batch(
                np.asarray(s[1], dtype=np.int8),
                np.asarray(s[2], dtype=np.int64),
                np.asarray(s[3], dtype=np.int64),
            )
            for member, s in zip(self.members, streams)
        )

    def service_batch(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray
    ) -> np.ndarray | None:
        # Single-pass override (see Raid0.service_batch); the read
        # counter only advances once the whole stream is accepted.
        streams = self._member_streams(ops, lbas, sizes, self._read_counter)
        member_streams = [
            (
                s[0],
                np.asarray(s[1], dtype=np.int8),
                np.asarray(s[2], dtype=np.int64),
                np.asarray(s[3], dtype=np.int64),
            )
            for s in streams
        ]
        if not all(
            member.supports_batch(f_ops, f_lbas, f_sizes)
            for member, (__, f_ops, f_lbas, f_sizes) in zip(self.members, member_streams)
        ):
            return None
        if self._read_policy is None:
            self._read_counter += int(np.sum(np.asarray(ops) == int(OpType.READ)))
        member_svcs = [
            (idx, member._service_batch(f_ops, f_lbas, f_sizes))
            for member, (idx, f_ops, f_lbas, f_sizes) in zip(self.members, member_streams)
        ]
        return _scatter_max(np.zeros(len(ops), dtype=np.float64), member_svcs)
