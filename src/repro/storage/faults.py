"""Fault and degradation wrappers over healthy device models.

ROADMAP item 3 asks for production scenarios — degraded arrays,
throttled channels, transient slowdowns — without forking the healthy
device models.  This module keeps the device zoo composable: a fault is
a :class:`~repro.storage.device.StorageDevice` that *wraps* another
device and perturbs its timing, so every replay engine, campaign
action, and cache keyed on fingerprints works unchanged.

Three families:

- **service-time injectors** (:class:`LatencyInflation`,
  :class:`TransientStalls`) — multiply/offset or periodically stall the
  wrapped device's service times behind a single FIFO server;
- **mid-trace reconfiguration** (:class:`MidTraceSwitch`) — route the
  first ``at_request`` requests to one device and the rest to another,
  modelling channels/dies taken offline at a configurable point in the
  trace;
- **degraded redundancy** (:class:`DegradedRaid1`) — a mirror set with
  one failed member, reads rebalanced over the survivors, optionally
  with background rebuild reads injected between host requests.

Bit-identity discipline
-----------------------
The service injectors never compute ``(finish - start) * factor``:
``fl(start + svc) - start != svc`` in IEEE-754, so that would make the
scalar and batch paths disagree by an ulp.  Instead the scalar path
obtains the wrapped device's *service duration* through the same
single-row ``service_batch`` pricing the vector engines use, applies
the fault transform with the same elementwise operations, and keeps its
own FIFO busy-until stamp — so the synchronous, batch, and queue-depth
replay engines all perform identical float operations and the
differential identity harness (`tests/test_device_zoo_identity.py`)
holds bitwise under both ``REPRO_SCALAR_KERNELS`` settings.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..trace.record import OpType
from .channel import InterfaceChannel
from .device import StorageDevice

__all__ = [
    "ServiceFaultWrapper",
    "LatencyInflation",
    "TransientStalls",
    "MidTraceSwitch",
    "DegradedRaid1",
]


class ServiceFaultWrapper(StorageDevice):
    """Base class for faults that transform per-request service times.

    The wrapper is a FIFO single server fronting the wrapped device:
    request ``i``'s service duration is the wrapped device's idle-state
    duration (priced through its ``service_batch`` contract, one row at
    a time in the scalar path) passed through :meth:`_fault_svc`.
    Rows the wrapped device cannot price gap-invariantly (e.g. buffered
    flash writes) fall back to driving its scalar ``_service`` — in
    exactly the streams where the whole-stream batch path is refused
    too, so every engine takes the same arithmetic either way.

    Subclasses implement the scalar :meth:`_fault_svc` and the
    vectorised :meth:`_fault_svc_batch` with *identical elementwise
    IEEE-754 operations*.
    """

    fifo_single_server = True

    def __init__(self, inner: StorageDevice, channel: InterfaceChannel | None = None) -> None:
        super().__init__(channel if channel is not None else inner.channel)
        self.inner = inner
        self._busy_until = 0.0
        self._index = 0  # requests seen so far (order state for the fault)

    def reset(self) -> None:
        """Cold state: wrapped device reset, server idle, count zeroed."""
        super().reset()
        self.inner.reset()
        self._busy_until = 0.0
        self._index = 0

    def fingerprint(self) -> str:
        return f"{super().fingerprint()}|inner={self.inner.fingerprint()}"

    # -- fault transform (subclass contract) ---------------------------

    def _fault_svc(self, svc: float, index: int) -> float:
        """Transformed service time for the ``index``-th request."""
        raise NotImplementedError

    def _fault_svc_batch(self, svc: np.ndarray, first_index: int) -> np.ndarray:
        """Vectorised :meth:`_fault_svc` for requests ``first_index..``.

        Must perform the same elementwise float operations as the
        scalar transform so both engines round identically.
        """
        raise NotImplementedError

    # -- device surface ------------------------------------------------

    def _inner_service_us(self, op: OpType, lba: int, size: int, start: float) -> float:
        """The wrapped device's service duration for one request.

        Priced through the single-row ``service_batch`` contract when
        the wrapped device supports it (consuming exactly the
        order-dependent state — RNG draws, head position, mirror
        round-robin — the full-stream batch call would), falling back
        to its scalar ``_service`` anchored at ``start`` otherwise.
        """
        ops1 = np.asarray([int(op)], dtype=np.int8)
        lbas1 = np.asarray([lba], dtype=np.int64)
        sizes1 = np.asarray([size], dtype=np.int64)
        svc = self.inner.service_batch(ops1, lbas1, sizes1)
        if svc is not None:
            return float(svc[0])
        inner_start, inner_finish = self.inner._service(op, lba, size, start)
        return inner_finish - start

    def _service(self, op: OpType, lba: int, size: int, t_ready: float) -> tuple[float, float]:
        start = t_ready if t_ready >= self._busy_until else self._busy_until
        svc = self._fault_svc(self._inner_service_us(op, lba, size, start), self._index)
        self._index += 1
        finish = start + svc
        self._busy_until = finish
        return start, finish

    def supports_batch(self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray) -> bool:
        """Gap-invariant exactly when the wrapped device is."""
        return self.inner.supports_batch(ops, lbas, sizes)

    def service_batch(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray
    ) -> np.ndarray | None:
        # Single-pass override (mirrors the RAID layers): the wrapped
        # device prices the stream once, then the transform is applied
        # elementwise with the same float ops as the scalar path.
        svc = self.inner.service_batch(ops, lbas, sizes)
        if svc is None:
            return None
        out = self._fault_svc_batch(np.asarray(svc, dtype=np.float64), self._index)
        self._index += len(out)
        return out

    # NOTE: no base `_expected_service` here — `service_time_us` probes
    # the concrete class's own __dict__, so every subclass must define
    # its analytic mean itself (as LatencyInflation/TransientStalls do).


class LatencyInflation(ServiceFaultWrapper):
    """Uniform service-time inflation: ``svc * factor + extra_us``.

    Models aging media, firmware throttling, or a congested backplane:
    every request is slowed by the same multiplicative factor plus a
    constant overhead.  ``factor >= 1`` and ``extra_us >= 0`` so the
    degraded device is never faster than the healthy one — the
    invariant the fault property suite asserts.
    """

    def __init__(
        self,
        inner: StorageDevice,
        factor: float = 1.0,
        extra_us: float = 0.0,
        channel: InterfaceChannel | None = None,
    ) -> None:
        if factor < 1.0:
            raise ValueError("latency inflation factor must be >= 1")
        if extra_us < 0.0:
            raise ValueError("extra latency must be non-negative")
        super().__init__(inner, channel)
        self.factor = float(factor)
        self.extra_us = float(extra_us)

    @property
    def name(self) -> str:
        """Human-readable model name."""
        return f"slow(x{self.factor:g}+{self.extra_us:g}us {self.inner.name})"

    def fingerprint(self) -> str:
        return f"{super().fingerprint()}|factor={self.factor!r}|extra={self.extra_us!r}"

    def _fault_svc(self, svc: float, index: int) -> float:
        return svc * self.factor + self.extra_us

    def _fault_svc_batch(self, svc: np.ndarray, first_index: int) -> np.ndarray:
        return svc * self.factor + self.extra_us

    def _expected_service(self, op: OpType, size: int, sequential: bool) -> float:
        """Wrapped device's analytic mean through the inflation."""
        return self.inner.service_time_us(op, size, sequential) * self.factor + self.extra_us


class TransientStalls(ServiceFaultWrapper):
    """Periodic stall injection: every ``every``-th request is delayed.

    Models background firmware activity (garbage collection, cache
    flushes, media scans) surfacing as periodic latency spikes: the
    requests whose 1-based ordinal is a multiple of ``every`` take
    ``stall_us`` extra.
    """

    def __init__(
        self,
        inner: StorageDevice,
        every: int = 100,
        stall_us: float = 1000.0,
        channel: InterfaceChannel | None = None,
    ) -> None:
        if every < 1:
            raise ValueError("stall period must be at least 1 request")
        if stall_us < 0.0:
            raise ValueError("stall duration must be non-negative")
        super().__init__(inner, channel)
        self.every = int(every)
        self.stall_us = float(stall_us)

    @property
    def name(self) -> str:
        """Human-readable model name."""
        return f"stall(every {self.every}, {self.stall_us:g}us, {self.inner.name})"

    def fingerprint(self) -> str:
        return f"{super().fingerprint()}|every={self.every}|stall={self.stall_us!r}"

    def _fault_svc(self, svc: float, index: int) -> float:
        if (index + 1) % self.every == 0:
            return svc + self.stall_us
        return svc

    def _fault_svc_batch(self, svc: np.ndarray, first_index: int) -> np.ndarray:
        ordinals = first_index + 1 + np.arange(len(svc), dtype=np.int64)
        return np.where(ordinals % self.every == 0, svc + self.stall_us, svc)

    def _expected_service(self, op: OpType, size: int, sequential: bool) -> float:
        """Mean service including the amortised stall share."""
        return self.inner.service_time_us(op, size, sequential) + self.stall_us / self.every


class MidTraceSwitch(StorageDevice):
    """Route requests to ``healthy`` until ``at_request``, then ``degraded``.

    Models a reconfiguration event at a known point in the request
    stream — flash channels or dies taken offline, a controller
    dropping to a degraded profile.  Requests with 0-based submission
    index below ``at_request`` are serviced by the healthy device, the
    rest by the degraded one.  The degraded device starts cold at the
    switch (its queues and media state carry nothing over) — a
    deliberate simplification: the switch models a reconfigured target,
    not a live migration of in-flight state.
    """

    fifo_single_server = False

    def __init__(
        self,
        healthy: StorageDevice,
        degraded: StorageDevice,
        at_request: int,
        channel: InterfaceChannel | None = None,
    ) -> None:
        if at_request < 0:
            raise ValueError("switch point must be a non-negative request index")
        super().__init__(channel if channel is not None else healthy.channel)
        self.healthy = healthy
        self.degraded = degraded
        self.at_request = int(at_request)
        self._index = 0

    @property
    def name(self) -> str:
        """Human-readable model name."""
        return f"switch@{self.at_request}({self.healthy.name}->{self.degraded.name})"

    def fingerprint(self) -> str:
        return (
            f"{super().fingerprint()}|at={self.at_request}"
            f"|healthy={self.healthy.fingerprint()}|degraded={self.degraded.fingerprint()}"
        )

    def reset(self) -> None:
        """Cold state: both phases reset, request counter zeroed."""
        super().reset()
        self.healthy.reset()
        self.degraded.reset()
        self._index = 0

    def _split(self, n: int) -> int:
        """Rows of the next ``n``-request stream served by ``healthy``."""
        return min(n, max(0, self.at_request - self._index))

    def _service(self, op: OpType, lba: int, size: int, t_ready: float) -> tuple[float, float]:
        device = self.healthy if self._index < self.at_request else self.degraded
        self._index += 1
        return device._service(op, lba, size, t_ready)

    def supports_batch(self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray) -> bool:
        """Gap-invariant when both phases support their slice."""
        k = self._split(len(np.asarray(ops)))
        return (
            k == 0 or self.healthy.supports_batch(ops[:k], lbas[:k], sizes[:k])
        ) and (
            k == len(np.asarray(ops))
            or self.degraded.supports_batch(ops[k:], lbas[k:], sizes[k:])
        )

    def _service_batch(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray
    ) -> np.ndarray:
        n = len(np.asarray(ops))
        k = self._split(n)
        parts = []
        if k:
            parts.append(self.healthy.service_batch(ops[:k], lbas[:k], sizes[:k]))
        if k < n:
            parts.append(self.degraded.service_batch(ops[k:], lbas[k:], sizes[k:]))
        self._index += n
        return np.concatenate([np.asarray(p, dtype=np.float64) for p in parts])

    def _expected_service(self, op: OpType, size: int, sequential: bool) -> float:
        """Healthy-phase analytic mean (the pre-fault steady state)."""
        return self.healthy.service_time_us(op, size, sequential)


class DegradedRaid1(StorageDevice):
    """Mirror set with one failed member and optional rebuild traffic.

    The full member set is supplied (so fingerprints line up with the
    healthy :class:`~repro.storage.raid.Raid1` it degrades from) but
    member ``failed_index`` receives no I/O: reads round-robin over the
    survivors, writes broadcast to the survivors only.

    When ``rebuild_every > 0``, every ``rebuild_every``-th host request
    is preceded by a background rebuild read of ``rebuild_chunk``
    sectors at an advancing cursor, dispatched round-robin over the
    survivors at the host request's ready time — the simple sequential
    resync pattern of a software mirror.  Rebuild reads occupy the
    chosen member, so host requests queue behind them; the
    :attr:`member_io_counts` / :attr:`rebuild_io_count` counters let
    the property suite assert the traffic conservation invariant.
    """

    fifo_single_server = False

    def __init__(
        self,
        members: Sequence[StorageDevice],
        failed_index: int = 0,
        rebuild_every: int = 0,
        rebuild_chunk: int = 128,
        channel: InterfaceChannel | None = None,
    ) -> None:
        if len(members) < 2:
            raise ValueError("a degraded mirror still needs the full member set (>= 2)")
        if not 0 <= failed_index < len(members):
            raise ValueError(f"failed member index {failed_index} out of range")
        if rebuild_every < 0:
            raise ValueError("rebuild period must be non-negative (0 disables rebuild)")
        if rebuild_every and rebuild_chunk <= 0:
            raise ValueError("rebuild chunk must be positive")
        super().__init__(channel if channel is not None else members[0].channel)
        self.members = list(members)
        self.failed_index = int(failed_index)
        self.rebuild_every = int(rebuild_every)
        self.rebuild_chunk = int(rebuild_chunk)
        self._survivor_indices = [
            i for i in range(len(self.members)) if i != self.failed_index
        ]
        self.survivors = [self.members[i] for i in self._survivor_indices]
        self._read_counter = 0
        self._host_count = 0
        self._rebuild_cursor = 0
        self._rebuild_rr = 0
        #: Per-member serviced request counts (host + rebuild I/O).
        self.member_io_counts = [0] * len(self.members)
        #: Background rebuild reads issued so far.
        self.rebuild_io_count = 0

    @property
    def name(self) -> str:
        """Human-readable model name."""
        suffix = ", rebuilding" if self.rebuild_every else ""
        return (
            f"raid1-degraded({len(self.members)}x {self.members[0].name},"
            f" failed={self.failed_index}{suffix})"
        )

    def fingerprint(self) -> str:
        members = ";".join(m.fingerprint() for m in self.members)
        return (
            f"{super().fingerprint()}|failed={self.failed_index}"
            f"|rebuild=({self.rebuild_every},{self.rebuild_chunk})|members=[{members}]"
        )

    def reset(self) -> None:
        """Cold state: members reset, counters and rebuild cursor zeroed."""
        super().reset()
        for member in self.members:
            member.reset()
        self._read_counter = 0
        self._host_count = 0
        self._rebuild_cursor = 0
        self._rebuild_rr = 0
        self.member_io_counts = [0] * len(self.members)
        self.rebuild_io_count = 0

    def _maybe_rebuild(self, t_ready: float) -> None:
        """Inject a background rebuild read before the next host request."""
        if not self.rebuild_every:
            return
        if self._host_count == 0 or self._host_count % self.rebuild_every:
            return
        slot = self._rebuild_rr % len(self.survivors)
        self._rebuild_rr += 1
        self.survivors[slot]._service(
            OpType.READ, self._rebuild_cursor, self.rebuild_chunk, t_ready
        )
        self._rebuild_cursor += self.rebuild_chunk
        self.member_io_counts[self._survivor_indices[slot]] += 1
        self.rebuild_io_count += 1

    def _service(self, op: OpType, lba: int, size: int, t_ready: float) -> tuple[float, float]:
        self._maybe_rebuild(t_ready)
        self._host_count += 1
        if op is OpType.READ:
            slot = self._read_counter % len(self.survivors)
            self._read_counter += 1
            self.member_io_counts[self._survivor_indices[slot]] += 1
            __, finish = self.survivors[slot]._service(op, lba, size, t_ready)
            return t_ready, finish
        finish = t_ready
        for index, member in zip(self._survivor_indices, self.survivors):
            self.member_io_counts[index] += 1
            __, member_finish = member._service(op, lba, size, t_ready)
            finish = max(finish, member_finish)
        return t_ready, finish

    # -- batch path ----------------------------------------------------
    #
    # The survivor fan-out is tiny (reads pick one member, writes hit
    # them all), so the per-request stream builder is used under both
    # engines — the REPRO_SCALAR_KERNELS seam's "fall back to scalar
    # where vectorisation doesn't pay" case.  With rebuild traffic
    # enabled the injected reads queue against host requests at real
    # arrival instants, so the stream is not gap-invariant and the
    # batch path is refused outright.

    def _survivor_streams(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray, counter: int
    ) -> list[tuple[list[int], list[int], list[int], list[int]]]:
        """Per-survivor substreams (reads round-robin, writes broadcast)."""
        n_survivors = len(self.survivors)
        streams: list[tuple[list[int], list[int], list[int], list[int]]] = [
            ([], [], [], []) for _ in range(n_survivors)
        ]
        ops_l = np.asarray(ops).tolist()
        lbas_l = np.asarray(lbas, dtype=np.int64).tolist()
        sizes_l = np.asarray(sizes, dtype=np.int64).tolist()
        read = int(OpType.READ)
        for i in range(len(ops_l)):
            if ops_l[i] == read:
                targets: tuple[int, ...] = (counter % n_survivors,)
                counter += 1
            else:
                targets = tuple(range(n_survivors))
            for slot in targets:
                idx, f_ops, f_lbas, f_sizes = streams[slot]
                idx.append(i)
                f_ops.append(ops_l[i])
                f_lbas.append(lbas_l[i])
                f_sizes.append(sizes_l[i])
        return streams

    def supports_batch(self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray) -> bool:
        """Gap-invariant when rebuild is off and all survivors agree."""
        if self.rebuild_every:
            return False
        streams = self._survivor_streams(ops, lbas, sizes, self._read_counter)
        return all(
            member.supports_batch(
                np.asarray(s[1], dtype=np.int8),
                np.asarray(s[2], dtype=np.int64),
                np.asarray(s[3], dtype=np.int64),
            )
            for member, s in zip(self.survivors, streams)
        )

    def service_batch(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray
    ) -> np.ndarray | None:
        # Single-pass override (see Raid1.service_batch): streams are
        # built once and state only advances once the stream is accepted.
        if self.rebuild_every:
            return None
        streams = self._survivor_streams(ops, lbas, sizes, self._read_counter)
        survivor_streams = [
            (
                s[0],
                np.asarray(s[1], dtype=np.int8),
                np.asarray(s[2], dtype=np.int64),
                np.asarray(s[3], dtype=np.int64),
            )
            for s in streams
        ]
        if not all(
            member.supports_batch(f_ops, f_lbas, f_sizes)
            for member, (__, f_ops, f_lbas, f_sizes) in zip(self.survivors, survivor_streams)
        ):
            return None
        self._read_counter += int(np.sum(np.asarray(ops) == int(OpType.READ)))
        out = np.zeros(len(np.asarray(ops)), dtype=np.float64)
        for index, member, (idx, f_ops, f_lbas, f_sizes) in zip(
            self._survivor_indices, self.survivors, survivor_streams
        ):
            self.member_io_counts[index] += len(idx)
            if len(idx):
                svc = member._service_batch(f_ops, f_lbas, f_sizes)
                np.maximum.at(out, np.asarray(idx, dtype=np.intp), svc)
        self._host_count += len(np.asarray(ops))
        return out

    def _expected_service(self, op: OpType, size: int, sequential: bool) -> float:
        """First survivor's analytic mean (mirrors are homogeneous)."""
        return self.survivors[0].service_time_us(op, size, sequential)
