"""All-flash array: the paper's "NEW" evaluation node.

Section V builds the target system "by grouping four NVM Express SSDs"
reachable over "four PCIe 3.0 slots".  The array stripes request
extents across member SSDs at a fixed stripe width (RAID-0 style),
submits the fragments concurrently — each SSD sits on its own PCIe
link — and completes when the slowest fragment completes.

The array itself is a :class:`StorageDevice`, so the replayer drives it
exactly like a single disk; its ``channel`` models the host-side PCIe
fan-out (commands to different SSDs overlap, so the array-level
channel delay is the per-SSD delay, not the sum).
"""

from __future__ import annotations

import numpy as np

from ..trace.record import OpType
from .channel import PCIE3_X4, InterfaceChannel
from .device import StorageDevice
from .flash import (
    _PLAN_CACHE,
    FlashGeometry,
    FlashReplayPlan,
    FlashSSD,
    _plan_cache_put,
    _stream_digest,
)
from .kernels import columnar_enabled, group_shapes, page_span

__all__ = ["FlashArray"]


class FlashArray(StorageDevice):
    """RAID-0 style group of :class:`FlashSSD` devices.

    Parameters
    ----------
    n_ssds:
        Member count (paper: 4).
    stripe_kb:
        Stripe unit; extents are chopped at stripe boundaries and each
        stripe routed to ``(stripe_index mod n_ssds)``.
    geometry:
        Per-SSD flash geometry (shared by all members).
    channel:
        Host link model per slot; defaults to PCIe 3.0 x4.
    """

    def __init__(
        self,
        n_ssds: int = 4,
        stripe_kb: int = 128,
        geometry: FlashGeometry | None = None,
        channel: InterfaceChannel = PCIE3_X4,
    ) -> None:
        if n_ssds <= 0:
            raise ValueError("need at least one SSD")
        if stripe_kb <= 0:
            raise ValueError("stripe unit must be positive")
        super().__init__(channel)
        self.n_ssds = n_ssds
        self.stripe_sectors = stripe_kb * 2  # 512-byte sectors per KB is 2
        self.ssds = [FlashSSD(geometry=geometry, channel=channel) for _ in range(n_ssds)]

    @property
    def name(self) -> str:
        """Human-readable model name."""
        return f"flash-array({self.n_ssds}x {self.ssds[0].name})"

    def fingerprint(self) -> str:
        return (
            f"{super().fingerprint()}|n={self.n_ssds}|stripe={self.stripe_sectors}"
            f"|member={self.ssds[0].fingerprint()}"
        )

    def reset(self) -> None:
        """Cold state for the array and every member SSD."""
        super().reset()
        for ssd in self.ssds:
            ssd.reset()

    # ------------------------------------------------------------------

    def _fragments(self, lba: int, size: int) -> list[tuple[int, int, int]]:
        """Split ``[lba, lba+size)`` at stripe boundaries.

        Returns ``(ssd_index, local_lba, local_size)`` triples.  The
        local LBA keeps the global address, which is harmless for a
        simulator (each SSD's page mapping is positional) and keeps
        sequential streams detectable per member.
        """
        out: list[tuple[int, int, int]] = []
        remaining = size
        cursor = lba
        while remaining > 0:
            stripe = cursor // self.stripe_sectors
            within = cursor - stripe * self.stripe_sectors
            chunk = min(remaining, self.stripe_sectors - within)
            out.append((stripe % self.n_ssds, cursor, chunk))
            cursor += chunk
            remaining -= chunk
        return out

    def _service(self, op: OpType, lba: int, size: int, t_ready: float) -> tuple[float, float]:
        # Inline fragment walk (same splitting as _fragments) — this is
        # the replay hot path, so no intermediate tuple list.
        ss = self.stripe_sectors
        n = self.n_ssds
        ssds = self.ssds
        finish = t_ready
        cursor = lba
        remaining = size
        while remaining > 0:
            stripe = cursor // ss
            chunk = ss - (cursor - stripe * ss)
            if chunk > remaining:
                chunk = remaining
            __, frag_finish = ssds[stripe % n]._service(op, cursor, chunk, t_ready)
            if frag_finish > finish:
                finish = frag_finish
            cursor += chunk
            remaining -= chunk
        return t_ready, finish

    def _expected_service(self, op: OpType, size: int, sequential: bool) -> float:
        """Nominal latency: the slowest fragment of an even striping."""
        n_frags = min(self.n_ssds, max(1, (size + self.stripe_sectors - 1) // self.stripe_sectors))
        per_ssd = -(-size // n_frags)  # ceiling division
        return self.ssds[0]._expected_service(op, per_ssd, sequential)

    def supports_batch(self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray) -> bool:
        """Batch-capable when members are, and no request revisits an SSD.

        Fragments of one extent land on distinct members as long as the
        extent spans at most ``n_ssds`` stripes; beyond that, same-SSD
        fragments queue behind each other and the array latency is no
        longer the max of independent fragment latencies.
        """
        if not self.ssds[0].supports_batch(ops, lbas, sizes):
            return False
        lbas = np.asarray(lbas, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        ss = self.stripe_sectors
        spans = (lbas + sizes - 1) // ss - lbas // ss + 1
        return bool(np.all(spans <= self.n_ssds))

    def _service_batch(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray
    ) -> np.ndarray:
        if columnar_enabled():
            return self._service_batch_columnar(ops, lbas, sizes)
        return self._service_batch_scalar(ops, lbas, sizes)

    def _service_batch_scalar(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray
    ) -> np.ndarray:
        """Retained per-request fragment walk — the columnar oracle."""
        # Fragments keep the global LBA (see _fragments) and every
        # member shares one geometry, so one member's relative-service
        # memo prices every fragment; the array latency is the slowest
        # fragment, exactly as the scalar path computes it.
        g = self.ssds[0].geometry
        rel_entry = self.ssds[0]._rel_entry
        ss = self.stripe_sectors
        page_sectors = g.page_sectors
        out = np.empty(len(lbas), dtype=np.float64)
        ops_l = np.asarray(ops).tolist()
        lbas_l = np.asarray(lbas, dtype=np.int64).tolist()
        sizes_l = np.asarray(sizes, dtype=np.int64).tolist()
        read, write = OpType.READ, OpType.WRITE
        for i in range(len(out)):
            op = read if ops_l[i] == 0 else write
            cursor, remaining = lbas_l[i], sizes_l[i]
            svc = 0.0
            while remaining > 0:
                within = cursor % ss
                chunk = min(remaining, ss - within)
                first_page = cursor // page_sectors
                n_pages = (cursor + chunk - 1) // page_sectors - first_page + 1
                frag = rel_entry(op, first_page, n_pages, chunk).svc
                if frag > svc:
                    svc = frag
                cursor += chunk
                remaining -= chunk
            out[i] = svc
        return out

    def _fragment_columns(
        self, lbas: np.ndarray, sizes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Stripe fan-out as index arithmetic, no per-request Python.

        Returns ``(offsets, request_index, frag_start, frag_size,
        member)`` flat fragment columns in exactly the order the scalar
        cursor walk emits them: request-major, stripe-minor.  Fragment
        ``j`` of request ``i`` lives at ``offsets[i] + j``.
        """
        ss = self.stripe_sectors
        n = len(lbas)
        stripe0 = lbas // ss
        spans = (lbas + sizes - 1) // ss - stripe0 + 1
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(spans, out=offsets[1:])
        total = int(offsets[-1])
        req = np.repeat(np.arange(n, dtype=np.int64), spans)
        k = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], spans)
        frag_stripe = stripe0[req] + k
        frag_start = np.maximum(lbas[req], frag_stripe * ss)
        frag_end = np.minimum((lbas + sizes)[req], (frag_stripe + 1) * ss)
        member = frag_stripe % self.n_ssds
        return offsets, req, frag_start, frag_end - frag_start, member

    def _service_batch_columnar(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray
    ) -> np.ndarray:
        """Grouped fan-out kernel: whole stream priced in one pass.

        Decomposes every request into stripe fragments with index
        arithmetic, evaluates each *unique* fragment shape once through
        the member memo, and folds fragments back to per-request maxima
        with one ``np.maximum.reduceat``.  Bit-identical to
        :meth:`_service_batch_scalar` (same memo entries, and the
        max-fold is order-insensitive).
        """
        member0 = self.ssds[0]
        lbas = np.asarray(lbas, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        offsets, req, frag_start, frag_size, __ = self._fragment_columns(lbas, sizes)
        first, n_pages = page_span(frag_start, frag_size, member0._page_sectors)
        uniq, inverse = group_shapes(
            np.asarray(ops)[req], first % member0._total_dies, n_pages, frag_size
        )
        rel_entry = member0._rel_entry
        read, write = OpType.READ, OpType.WRITE
        svc_u = np.empty(len(uniq), dtype=np.float64)
        for j, (op, slot, npg, size) in enumerate(uniq.tolist()):
            svc_u[j] = rel_entry(read if op == 0 else write, slot, npg, size).svc
        return np.maximum.reduceat(svc_u[inverse], offsets[:-1])

    def replay_plan(self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray):
        """Fragment plan for the queue-depth event loop.

        Same fragment order as the scalar :meth:`_service` walk; every
        fragment carries its owning member SSD and memo entry so the
        event loop can run each member's fast paths inline.  Pure — no
        simulator state is consumed.  ``None`` when the columnar
        engines are disabled.
        """
        if not columnar_enabled():
            return None
        key = (self.fingerprint(), _stream_digest(ops, lbas, sizes))
        plan = _PLAN_CACHE.get(key)
        if plan is not None:
            return plan
        member0 = self.ssds[0]
        ops = np.asarray(ops)
        lbas = np.asarray(lbas, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        offsets, req, frag_start, frag_size, member = self._fragment_columns(lbas, sizes)
        first, n_pages = page_span(frag_start, frag_size, member0._page_sectors)
        entries = member0._entries_for(ops[req], first, n_pages, frag_size)
        frags = list(zip(member.tolist(), entries))
        plan = FlashReplayPlan(offsets.tolist(), frags, array_level=True)
        _plan_cache_put(key, plan)
        return plan
