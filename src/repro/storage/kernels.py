"""Columnar (structure-of-arrays) kernels for the device-model hot path.

The flash/array/RAID emulation layer services page extents with
per-page Python loops over die/channel busy lists (`flash.py`), and
fans requests out over members with per-request Python loops
(`array.py`, `raid.py`).  This module holds the vectorized
replacements: a NumPy *wave decomposition* of the page-occupancy
recurrences and a grouped unique-shape evaluator for whole request
streams.  Every kernel is **bit-identical** to the scalar code it
replaces — it performs the same IEEE-754 operations in the same
order — and the scalar code is retained as the oracle
(`tests/test_device_kernels_identity.py` enforces the identity, in CI
under both engines).

Wave decomposition
------------------
A request's pages are consecutive, and pages stripe over dies
round-robin (``die_slot = page % total_dies``) with
``channel = page % channels``.  Page ``i`` of the request is therefore
visit number ``i // total_dies`` ("wave") of its die and visit number
``i // channels`` ("round") of its channel.  The scalar per-page
recurrences factor into:

- per-die chains — an elementwise vector recurrence across waves
  (``cur = cur + op_us``), because consecutive visits to one die are
  one wave apart;
- per-channel transfer chains — an elementwise vector recurrence
  across rounds, with a gather from the die matrix where the read
  chain feeds the transfer chain (reads) or vice versa (programs).

Both reproduce the scalar chains addition-for-addition: ``max`` is
order-insensitive for the values involved and ``fl(max(a, b) + c)``
equals ``max(fl(a + c), fl(b + c))`` is never relied upon — each chain
applies the exact scalar operation sequence, just one vector lane per
die/channel.

Engine selection
----------------
``columnar_enabled()`` gates every columnar path; setting the
environment variable ``REPRO_SCALAR_KERNELS=1`` (read at import, or
via :func:`set_force_scalar` in tests) forces the retained scalar
oracles everywhere so CI can exercise both engines.  The per-page wave
kernels additionally only engage above :data:`COLUMNAR_MIN_PAGES`
pages — below that, list indexing beats NumPy's per-call overhead —
but remain bit-identical at every size.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "COLUMNAR_MIN_PAGES",
    "columnar_enabled",
    "set_force_scalar",
    "page_span",
    "group_shapes",
    "read_wave_kernel",
    "program_wave_kernel",
    "exclusive_running_max",
    "first_window_violation",
]

#: Page count above which the wave kernels beat the scalar walk
#: (below it, Python-list indexing wins on per-call overhead; measured
#: break-even ~64 pages on the default geometry, see
#: ``benchmarks/bench_pipeline.py`` stage ``flash_read_pages``).
COLUMNAR_MIN_PAGES = 64

_FORCE_SCALAR = os.environ.get("REPRO_SCALAR_KERNELS", "") not in ("", "0")


def columnar_enabled() -> bool:
    """Whether the columnar kernels are engaged (env-gated, see module doc)."""
    return not _FORCE_SCALAR


def set_force_scalar(force: bool) -> None:
    """Test hook: force the retained scalar oracles on or off."""
    global _FORCE_SCALAR
    _FORCE_SCALAR = force


def page_span(lbas, sizes, page_sectors: int):
    """``(first_page, n_pages)`` of the page extent touching a sector extent.

    Works elementwise on arrays and on plain ints — the single
    definition shared by the scalar ``_pages_of`` walk and the batch
    kernels, so the two can never disagree on extent math.
    """
    first = lbas // page_sectors
    n_pages = (lbas + sizes - 1) // page_sectors - first + 1
    return first, n_pages


def group_shapes(
    ops: np.ndarray, slots: np.ndarray, n_pages: np.ndarray, sizes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Group request rows by service shape ``(op, slot, n_pages, size)``.

    Returns ``(uniq, inverse)`` where ``uniq`` is a ``(k, 4)`` int64
    array of the distinct shapes and ``inverse`` maps each input row to
    its shape index — the scatter side of the grouped service kernels.
    Shapes are packed into one int64 key when the value ranges allow
    (the common case — one ``np.unique`` over a flat array), falling
    back to row-wise ``np.unique`` otherwise.
    """
    ops = np.asarray(ops, dtype=np.int64)
    slots = np.asarray(slots, dtype=np.int64)
    n_pages = np.asarray(n_pages, dtype=np.int64)
    sizes = np.asarray(sizes, dtype=np.int64)
    if len(ops) == 0:
        return np.empty((0, 4), dtype=np.int64), np.empty(0, dtype=np.intp)
    m_op = int(ops.max()) + 1
    m_slot = int(slots.max()) + 1
    m_np = int(n_pages.max()) + 1
    m_size = int(sizes.max()) + 1
    if float(m_op) * m_slot * m_np * m_size < 2**62:
        packed = ((ops * m_slot + slots) * m_np + n_pages) * m_size + sizes
        uniq_packed, inverse = np.unique(packed, return_inverse=True)
        rest, u_sizes = np.divmod(uniq_packed, m_size)
        rest, u_np = np.divmod(rest, m_np)
        u_ops, u_slots = np.divmod(rest, m_slot)
        uniq = np.column_stack([u_ops, u_slots, u_np, u_sizes])
        return uniq, inverse
    rows = np.column_stack([ops, slots, n_pages, sizes])
    uniq, inverse = np.unique(rows, axis=0, return_inverse=True)
    return uniq, inverse.reshape(-1)


def exclusive_running_max(values: np.ndarray, initial: float) -> np.ndarray:
    """Exclusive prefix maximum folded with a starting value.

    ``out[j] = max(initial, values[0], ..., values[j - 1])`` with
    ``out[0] = initial`` — the epoch replay engine's optimistic horizon
    column: entry ``j`` sees the horizon every *earlier* fragment would
    leave behind if all of them took the fast path.  Exact (``max`` is
    order-insensitive), no floating-point additions.
    """
    k = len(values)
    out = np.empty(k, dtype=np.float64)
    if k == 0:
        return out
    out[0] = initial
    if k > 1:
        run = np.maximum.accumulate(values[: k - 1])
        np.maximum(run, initial, out=out[1:])
    return out


def first_window_violation(
    finishes: np.ndarray, submits: np.ndarray, queue_depth: int, i0: int, i1: int
) -> int:
    """First ``j`` in ``[i0 - qd, i1 - qd)`` with ``fin[j] > submit[j + qd]``.

    The epoch engine's no-bump certificate: when every request ``j``
    finishes by the time request ``j + qd`` submits, the in-flight
    window can never be full (submits are non-decreasing), so the
    optimistically computed clock chain is exact and no heap work is
    needed at all.  Returns ``-1`` when the certificate holds for the
    epoch, else the first violating ``j`` — a *conservative* signal
    (the real event loop may still absorb it without a clock bump), at
    which point the caller falls back to the serial engine.
    """
    lo = max(0, i0 - queue_depth)
    hi = i1 - queue_depth
    if hi <= lo:
        return -1
    bad = finishes[lo:hi] > submits[lo + queue_depth : hi + queue_depth]
    j = int(np.argmax(bad))
    if not bad[j]:
        return -1
    return lo + j


def _per_die_op_us(
    counts: np.ndarray, base_us: float, planes_per_die: int, plane_interleave: bool
) -> np.ndarray:
    """Vector twin of ``FlashSSD._page_op_us`` over per-die page counts."""
    if not plane_interleave:
        return np.full(len(counts), base_us, dtype=np.float64)
    denom = np.maximum(1, np.minimum(planes_per_die, counts))
    return np.where(counts <= 1, base_us, base_us / denom)


def read_wave_kernel(
    first_page: int,
    n_pages: int,
    t_ready: float,
    die_busy: list[float],
    chan_busy: list[float],
    channels: int,
    total_dies: int,
    read_us: float,
    xfer_us: float,
    planes_per_die: int,
    plane_interleave: bool,
) -> float:
    """Columnar ``_read_pages``: die read chains, then channel transfers.

    Mutates ``die_busy``/``chan_busy`` (Python lists, the live
    simulator state, slot-indexed: die ``page % total_dies``, channel
    ``page % channels``) exactly as the scalar walk would and returns
    the request finish time.  Bit-identical to the retained scalar
    ``FlashSSD._read_pages`` for every page count and state.
    """
    base = first_page % total_dies
    slots = (base + np.arange(n_pages, dtype=np.int64)) % total_dies
    counts = np.bincount(slots, minlength=total_dies)
    ru = _per_die_op_us(counts, read_us, planes_per_die, plane_interleave)
    db0 = np.fromiter(die_busy, dtype=np.float64, count=len(die_busy))
    waves = -(-n_pages // total_dies)
    rd = np.empty((waves, total_dies), dtype=np.float64)
    cur = np.maximum(t_ready, db0) + ru
    rd[0] = cur
    for w in range(1, waves):
        cur = cur + ru
        rd[w] = cur
    # Channel transfer chains: round j of channel c is page
    # (ch_off[c] + j*channels).  The read_done feed is gathered as one
    # (rounds, channels) matrix; only the last round can be partial,
    # and the chain is monotone per channel, so the final chain value
    # is both the commit stamp and the per-channel maximum.
    ch_off = (np.arange(channels, dtype=np.int64) - base) % channels
    cb0 = np.fromiter(chan_busy, dtype=np.float64, count=len(chan_busy))
    rounds = -(-n_pages // channels)
    pages = ch_off[None, :] + np.arange(rounds, dtype=np.int64)[:, None] * channels
    # Out-of-range lanes of the (only possibly partial) last round are
    # masked below; clip their gather indices to stay in bounds.
    safe = np.minimum(pages, n_pages - 1)
    feed = rd[safe // total_dies, (base + safe) % total_dies]
    x = cb0.copy()
    maximum = np.maximum
    for j in range(rounds - 1):
        x = maximum(feed[j], x) + xfer_us
    last_active = pages[rounds - 1] < n_pages
    if last_active.all():
        x = maximum(feed[rounds - 1], x) + xfer_us
        visited = np.arange(channels)
    else:
        # Channels inactive in the (only possibly partial) last round
        # keep their chain value from the earlier full rounds.
        xa = maximum(feed[rounds - 1, last_active], x[last_active]) + xfer_us
        x[last_active] = xa
        visited = np.nonzero(ch_off < n_pages)[0]
    xv = x[visited]
    m = xv.max()
    finish = float(m) if m > t_ready else t_ready
    # Commit: final die read stamp is its last wave; channels their chain.
    present = np.nonzero(counts)[0]
    die_final = rd[counts[present] - 1, present]
    for s, v in zip(present.tolist(), die_final.tolist()):
        die_busy[s] = v
    for c, v in zip(visited.tolist(), xv.tolist()):
        chan_busy[c] = v
    return finish


def program_wave_kernel(
    first_page: int,
    n_pages: int,
    t_ready: float,
    die_busy: list[float],
    chan_busy: list[float],
    channels: int,
    total_dies: int,
    program_us: float,
    xfer_us: float,
    planes_per_die: int,
    plane_interleave: bool,
) -> float:
    """Columnar ``_program_pages``: channel transfers, then die programs.

    Same contract as :func:`read_wave_kernel`; bit-identical to the
    retained scalar ``FlashSSD._program_pages``.
    """
    base = first_page % total_dies
    slots = (base + np.arange(n_pages, dtype=np.int64)) % total_dies
    counts = np.bincount(slots, minlength=total_dies)
    pu = _per_die_op_us(counts, program_us, planes_per_die, plane_interleave)
    # Channel transfer chains feed the die program chains.  After the
    # first visit x >= t_ready, so max(t_ready, x_prev) is x_prev
    # bitwise and the chain is a pure vector add per round.
    ch_off = (np.arange(channels, dtype=np.int64) - base) % channels
    cb0 = np.fromiter(chan_busy, dtype=np.float64, count=len(chan_busy))
    rounds = -(-n_pages // channels)
    xd = np.empty((rounds, channels), dtype=np.float64)
    xcur = np.maximum(t_ready, cb0) + xfer_us
    xd[0] = xcur
    for j in range(1, rounds):
        xcur = xcur + xfer_us
        xd[j] = xcur
    # Die program chains: wave w of slot s gathers its page's transfer
    # from the channel matrix — one (waves, total_dies) gather, with
    # only the last wave possibly partial.  The chain is monotone per
    # die, so the final value is both the stamp and the per-die max.
    slot_off = (np.arange(total_dies, dtype=np.int64) - base) % total_dies
    slot_ch = np.arange(total_dies, dtype=np.int64) % channels
    cur = np.fromiter(die_busy, dtype=np.float64, count=len(die_busy))
    waves = -(-n_pages // total_dies)
    pages_m = slot_off[None, :] + np.arange(waves, dtype=np.int64)[:, None] * total_dies
    # Clip the masked out-of-range lanes of the partial last wave.
    safe_m = np.minimum(pages_m, n_pages - 1)
    feed = xd[safe_m // channels, np.broadcast_to(slot_ch, pages_m.shape)]
    maximum = np.maximum
    for w in range(waves - 1):
        cur = maximum(feed[w], cur) + pu
    last_active = pages_m[waves - 1] < n_pages
    if last_active.all():
        cur = maximum(feed[waves - 1], cur) + pu
    else:
        pd = maximum(feed[waves - 1, last_active], cur[last_active]) + pu[last_active]
        cur[last_active] = pd
    present = np.nonzero(counts)[0]
    curp = cur[present]
    m = curp.max()
    finish = float(m) if m > t_ready else t_ready
    for s, v in zip(present.tolist(), curp.tolist()):
        die_busy[s] = v
    # A channel's final transfer stamp is its last round's chain value.
    visited = ch_off < n_pages
    last_round = (n_pages - 1 - ch_off[visited]) // channels
    vis_idx = np.nonzero(visited)[0]
    for c, v in zip(vis_idx.tolist(), xd[last_round, vis_idx].tolist()):
        chan_busy[c] = v
    return finish
