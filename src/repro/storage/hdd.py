"""Hard disk drive model (Ruemmler & Wilkes style).

This is the "OLD" storage node of the paper: the 2007-2009 systems the
public traces were collected on, and the enterprise disk used to
calibrate :math:`T_{movd}`.  The model captures the mechanics the
inference model must later recover from timing alone:

- **seek** — square-root curve in cylinder distance, calibrated so the
  average random seek matches the datasheet number;
- **rotational latency** — uniform in one revolution for non-sequential
  accesses (deterministic via a seeded RNG);
- **media transfer** — request size over the track transfer rate;
- **streaming** — an access that starts exactly where the previous one
  ended skips both seek and rotation (the head is already there);
- **optional write-back cache** — absorbs writes at transfer speed
  until the cache is full, then throttles to media speed.

The sum "seek + rotation" is precisely what the paper calls the moving
delay :math:`T_{movd}`; the per-sector transfer slope is what the
:math:`\\beta` / :math:`\\eta` coefficients recover.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.record import SECTOR_BYTES, OpType
from .channel import SATA_300, InterfaceChannel
from .device import StorageDevice

__all__ = ["HDDGeometry", "HDDModel"]


@dataclass(frozen=True, slots=True)
class HDDGeometry:
    """Mechanical parameters of the simulated disk.

    Defaults approximate a 7200 rpm enterprise SATA drive of the trace
    collection era (~2007): 8.5 ms average seek, ~100 MB/s media rate.
    """

    rpm: float = 7200.0
    avg_seek_ms: float = 8.5
    track_to_track_ms: float = 0.8
    sectors_per_track: int = 1600
    heads: int = 4
    total_sectors: int = 2 * 1024**3 // 512 * 1000  # ~1 TB in sectors

    def __post_init__(self) -> None:
        if self.rpm <= 0:
            raise ValueError("rpm must be positive")
        if self.avg_seek_ms < self.track_to_track_ms:
            raise ValueError("average seek cannot be below track-to-track seek")
        if self.sectors_per_track <= 0 or self.heads <= 0 or self.total_sectors <= 0:
            raise ValueError("geometry counts must be positive")

    @property
    def rotation_us(self) -> float:
        """One full revolution in microseconds."""
        return 60e6 / self.rpm

    @property
    def sectors_per_cylinder(self) -> int:
        """Sectors under the heads without seeking."""
        return self.sectors_per_track * self.heads

    @property
    def cylinders(self) -> int:
        """Number of cylinders implied by capacity and track density."""
        return max(1, self.total_sectors // self.sectors_per_cylinder)

    @property
    def transfer_us_per_sector(self) -> float:
        """Media transfer time per sector (one track per revolution)."""
        return self.rotation_us / self.sectors_per_track

    def cylinder_of(self, lba: int) -> int:
        """Cylinder containing ``lba`` (clamped to the last cylinder)."""
        return min(lba // self.sectors_per_cylinder, self.cylinders - 1)

    def seek_us(self, distance_cylinders: int) -> float:
        """Seek time for a cylinder distance, square-root law.

        ``seek(d) = t2t + k * sqrt(d)`` with ``k`` calibrated so a seek
        across one third of the disk (the classic average random seek
        distance) costs ``avg_seek_ms``.
        """
        if distance_cylinders < 0:
            raise ValueError("distance must be non-negative")
        if distance_cylinders == 0:
            return 0.0
        avg_distance = max(1.0, self.cylinders / 3.0)
        k = (self.avg_seek_ms - self.track_to_track_ms) * 1e3 / np.sqrt(avg_distance)
        return self.track_to_track_ms * 1e3 + k * float(np.sqrt(distance_cylinders))


class HDDModel(StorageDevice):
    """Single-spindle disk with a seeded pseudo-random rotational phase.

    Parameters
    ----------
    geometry:
        Mechanical description; defaults to :class:`HDDGeometry()`.
    channel:
        Host link; defaults to SATA II, the era-appropriate interface.
    write_back_cache_kb:
        Size of the on-drive write cache.  0 (default) disables it —
        disabled is the configuration the inference model's linear
        :math:`T_{sdev}` assumption describes, and matches enterprise
        deployments that disable volatile caches for durability.
    seed:
        RNG seed for rotational phases (reproducible runs).
    """

    def __init__(
        self,
        geometry: HDDGeometry | None = None,
        channel: InterfaceChannel = SATA_300,
        write_back_cache_kb: int = 0,
        seed: int = 42,
    ) -> None:
        super().__init__(channel)
        self.geometry = geometry or HDDGeometry()
        self.write_back_cache_kb = write_back_cache_kb
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._busy_until = 0.0
        self._head_cylinder = 0
        self._last_end_lba = -1
        self._cache_drain_at = 0.0  # virtual time the write cache is drained

    @property
    def name(self) -> str:
        """Human-readable model name."""
        return f"hdd({self.geometry.rpm:.0f}rpm)"

    def fingerprint(self) -> str:
        return (
            f"{super().fingerprint()}|{self.geometry!r}"
            f"|cache={self.write_back_cache_kb}|seed={self._seed}"
        )

    def reset(self) -> None:
        """Cold state: head at cylinder 0, caches empty, RNG reseeded."""
        super().reset()
        self._rng = np.random.default_rng(self._seed)
        self._busy_until = 0.0
        self._head_cylinder = 0
        self._last_end_lba = -1
        self._cache_drain_at = 0.0

    # ------------------------------------------------------------------

    def _mechanical_us(self, lba: int, sequential: bool) -> float:
        """Seek + rotational delay (:math:`T_{movd}`) for this access."""
        if sequential:
            return 0.0
        target = self.geometry.cylinder_of(lba)
        seek = self.geometry.seek_us(abs(target - self._head_cylinder))
        rotation = float(self._rng.uniform(0.0, self.geometry.rotation_us))
        return seek + rotation

    def _service(self, op: OpType, lba: int, size: int, t_ready: float) -> tuple[float, float]:
        sequential = lba == self._last_end_lba
        start = max(t_ready, self._busy_until)
        transfer = size * self.geometry.transfer_us_per_sector
        cache_bytes = self.write_back_cache_kb * 1024
        if op is OpType.WRITE and cache_bytes > 0 and self._cache_fits(size, start, cache_bytes):
            # Write-back hit: ack at electronic speed, drain in background.
            finish = start + max(1.0, transfer * 0.05)
            self._cache_drain_at = max(self._cache_drain_at, start) + self._mechanical_us(
                lba, sequential
            ) + transfer
            self._busy_until = finish
        else:
            # One fused add of (mechanical + transfer) so the scalar and
            # vectorised batch paths round identically.
            finish = start + (self._mechanical_us(lba, sequential) + transfer)
            self._busy_until = finish
        self._head_cylinder = self.geometry.cylinder_of(lba + size - 1)
        self._last_end_lba = lba + size
        return start, finish

    fifo_single_server = True

    def supports_batch(self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray) -> bool:
        """Gap-invariant unless the write-back cache is enabled.

        With the cache on, admission depends on how far the drain
        backlog runs ahead of *wall-clock* submission times, so
        latencies are no longer a function of request order alone.
        """
        return self.write_back_cache_kb == 0

    def _service_batch(
        self, ops: np.ndarray, lbas: np.ndarray, sizes: np.ndarray
    ) -> np.ndarray:
        """Vectorised seek/rotation/transfer model.

        Reproduces the scalar :meth:`_service` arithmetic elementwise —
        including the order of the rotational-phase RNG draws (one per
        non-sequential request) — so results are bit-identical.
        """
        g = self.geometry
        lbas = np.asarray(lbas, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        n = len(lbas)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        ends = lbas + sizes
        prev_end = np.concatenate([[self._last_end_lba], ends[:-1]])
        sequential = lbas == prev_end
        end_cyl = np.minimum((ends - 1) // g.sectors_per_cylinder, g.cylinders - 1)
        head = np.concatenate([[self._head_cylinder], end_cyl[:-1]])
        target = np.minimum(lbas // g.sectors_per_cylinder, g.cylinders - 1)
        distance = np.abs(target - head)
        avg_distance = max(1.0, g.cylinders / 3.0)
        k = (g.avg_seek_ms - g.track_to_track_ms) * 1e3 / np.sqrt(avg_distance)
        seek = np.where(
            distance == 0, 0.0, g.track_to_track_ms * 1e3 + k * np.sqrt(distance)
        )
        rotation = np.zeros(n, dtype=np.float64)
        non_seq = ~sequential
        n_draws = int(non_seq.sum())
        if n_draws:
            # Same generator stream as n scalar uniform() calls.
            rotation[non_seq] = self._rng.uniform(0.0, g.rotation_us, n_draws)
        mechanical = np.where(sequential, 0.0, seek + rotation)
        svc = mechanical + sizes * g.transfer_us_per_sector
        self._head_cylinder = int(end_cyl[-1])
        self._last_end_lba = int(ends[-1])
        return svc

    def _cache_fits(self, size: int, now: float, cache_bytes: int) -> bool:
        """Crude cache admission: accept while the drain backlog is short.

        The backlog is represented by how far ``_cache_drain_at`` runs
        ahead of ``now``; we admit while that lead is under the time it
        would take to drain a full cache.
        """
        full_drain_us = cache_bytes / SECTOR_BYTES * self.geometry.transfer_us_per_sector
        backlog_us = max(0.0, self._cache_drain_at - now)
        return backlog_us + size * self.geometry.transfer_us_per_sector < full_drain_us

    def _expected_service(self, op: OpType, size: int, sequential: bool) -> float:
        """Analytic mean :math:`T_{sdev}` (used by calibration code)."""
        transfer = size * self.geometry.transfer_us_per_sector
        if sequential:
            return transfer
        avg_distance = max(1.0, self.geometry.cylinders / 3.0)
        mean_seek = self.geometry.seek_us(int(avg_distance))
        mean_rotation = self.geometry.rotation_us / 2.0
        return mean_seek + mean_rotation + transfer

    @property
    def expected_movd_us(self) -> float:
        """Analytic mean moving delay (seek + half rotation).

        This is the ground truth the :math:`T_{movd}` inference
        (Section III, Figure 7a) should approximately recover.
        """
        avg_distance = max(1.0, self.geometry.cylinders / 3.0)
        return self.geometry.seek_us(int(avg_distance)) + self.geometry.rotation_us / 2.0
