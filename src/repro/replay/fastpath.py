"""Optional compiled replay kernels behind the ``repro[fast]`` extra.

The queue-depth replay engines are bit-identity oracles first and fast
engines second: every stamp is an IEEE-754 double produced by a fixed
operation sequence, and the pure-Python implementations in this module
*are* that sequence.  When `numba <https://numba.pydata.org>`_ is
installed (``pip install repro[fast]``), the same loops are compiled
with ``@njit`` — **without** ``fastmath``, so the compiled code
performs the identical additions and comparisons in the identical
order and the stamps stay bit-for-bit equal to the Python tier.  The
CI job with numba installed asserts exactly that
(``tests/test_fastpath_identity.py``); the Python tier remains the
default and the identity gate.

Two serial chains are eligible for compilation (everything else in the
epoch engine is either already vectorised or walks Python object
graphs — memo entries, busy lists — that a compiled interpreter cannot
touch without changing the state layout):

- :func:`ack_chain` — the optimistic submit/ack clock chain the epoch
  engine runs per epoch (``ack = clock + t_cdel``; ``clock = ack +
  idle``);
- :func:`fifo_chain` — the whole FIFO window recurrence used for
  single-server devices and ``queue_depth == 1``.

Selection: compiled kernels are used automatically when importable
unless ``REPRO_NO_NUMBA`` is set (or :func:`set_use_numba` disables
them); both tiers stay importable so the identity suite can compare
them directly.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "HAVE_NUMBA",
    "numba_enabled",
    "set_use_numba",
    "ack_chain",
    "ack_chain_np",
    "ack_chain_py",
    "fifo_chain",
    "fifo_chain_py",
]

try:  # pragma: no cover - exercised only on the numba CI leg
    from numba import njit

    HAVE_NUMBA = True
except ImportError:  # the default environment: pure-Python tier
    HAVE_NUMBA = False
    njit = None

_USE_NUMBA = HAVE_NUMBA and os.environ.get("REPRO_NO_NUMBA", "") in ("", "0")


def numba_enabled() -> bool:
    """Whether the compiled kernels are active (installed and not disabled)."""
    return _USE_NUMBA


def set_use_numba(enabled: bool) -> None:
    """Test hook: toggle the compiled tier (no-op when numba is absent)."""
    global _USE_NUMBA
    _USE_NUMBA = bool(enabled) and HAVE_NUMBA


def ack_chain_py(t_cdel, idle, clock0, i0, i1, n, acks_out) -> float:
    """Serial submit/ack clock chain over requests ``[i0, i1)``.

    Fills ``acks_out[i0:i1]`` with ``ack_i = clock_i + t_cdel[i]`` where
    ``clock_{i+1} = ack_i + idle[i]`` (no window bumps — the epoch
    engine validates that assumption afterwards) and returns the clock
    after request ``i1 - 1``.  Python floats, two additions per
    request, exactly the scalar engine's operand order: ``np.cumsum``
    would reassociate the additions and change stamps at rounding
    level, so the chain stays serial.
    """
    tc = t_cdel[i0:i1].tolist()
    last = min(i1, n - 1)
    id_l = idle[i0:last].tolist()
    clock = clock0
    out = []
    append = out.append
    for j, dt in enumerate(tc):
        ack = clock + dt
        append(ack)
        if j < len(id_l):
            clock = ack + id_l[j]
    acks_out[i0:i1] = out
    return clock


def ack_chain_np(t_cdel, idle, clock0, i0, i1, n, acks_out) -> float:
    """:func:`ack_chain_py` as one strict-serial ufunc accumulation.

    ``np.add.accumulate`` is a sequential left fold (``r[i] = r[i-1] +
    a[i]``, no pairwise reassociation — that hazard belongs to
    reductions like ``np.sum``), so interleaving the channel-delay and
    idle addends into one array and accumulating performs *exactly* the
    Python tier's additions in the same order on the same operands:
    ``acc[2j] = ack`` and ``acc[2j+1] = clock`` stay bit-identical.
    """
    k = i1 - i0
    if k == 0:
        return clock0
    m = min(i1, n - 1) - i0
    z = np.empty(k + m, dtype=np.float64)
    z[0::2] = t_cdel[i0:i1]
    z[1::2] = idle[i0 : i0 + m]
    z[0] = clock0 + z[0]
    acc = np.add.accumulate(z)
    acks_out[i0:i1] = acc[0::2]
    if m == 0:
        return clock0
    return float(acc[2 * m - 1])


def fifo_chain_py(t_cdel, svc, idle, queue_depth, submits, acks, starts, finishes) -> None:
    """FIFO window recurrence over precomputed service columns.

    The single-server queue-depth replay chain (see
    ``repro.replay.qdepth._qdepth_fifo_fast``): finishes are
    non-decreasing, so the oldest outstanding completion is
    ``finishes[i - qd]`` and the whole replay is one scalar chain.
    Fills the four output columns in place.
    """
    n = len(svc)
    t_cdel_l = t_cdel.tolist()
    svc_l = svc.tolist()
    idle_l = idle.tolist()
    finishes_l: list[float] = []
    append_finish = finishes_l.append
    clock = 0.0
    prev_finish = 0.0
    qd = queue_depth
    for i in range(n):
        if i >= qd and finishes_l[i - qd] > clock:
            clock = finishes_l[i - qd]
        ack = clock + t_cdel_l[i]
        start = ack if ack >= prev_finish else prev_finish
        finish = start + svc_l[i]
        submits[i] = clock
        acks[i] = ack
        starts[i] = start
        finishes[i] = finish
        append_finish(finish)
        prev_finish = finish
        if i < n - 1:
            clock = ack + idle_l[i]


if HAVE_NUMBA:  # pragma: no cover - exercised only on the numba CI leg

    @njit(cache=False)
    def _ack_chain_impl(t_cdel, idle, clock0, i0, i1, n, acks_out):
        clock = clock0
        for i in range(i0, i1):
            ack = clock + t_cdel[i]
            acks_out[i] = ack
            if i < n - 1:
                clock = ack + idle[i]
        return clock

    @njit(cache=False)
    def _fifo_chain_impl(t_cdel, svc, idle, queue_depth, submits, acks, starts, finishes):
        n = len(svc)
        clock = 0.0
        prev_finish = 0.0
        for i in range(n):
            if i >= queue_depth and finishes[i - queue_depth] > clock:
                clock = finishes[i - queue_depth]
            ack = clock + t_cdel[i]
            start = ack if ack >= prev_finish else prev_finish
            finish = start + svc[i]
            submits[i] = clock
            acks[i] = ack
            starts[i] = start
            finishes[i] = finish
            prev_finish = finish
            if i < n - 1:
                clock = ack + idle[i]


def ack_chain(t_cdel, idle, clock0, i0, i1, n, acks_out) -> float:
    """Dispatching :func:`ack_chain_py`: compiled when numba is active,
    the strict-serial ufunc accumulation otherwise (both bit-identical
    to the Python reference tier)."""
    if _USE_NUMBA:
        return float(_ack_chain_impl(t_cdel, idle, clock0, i0, i1, n, acks_out))
    return ack_chain_np(t_cdel, idle, clock0, i0, i1, n, acks_out)


def fifo_chain(t_cdel, svc, idle, queue_depth, submits, acks, starts, finishes) -> None:
    """Dispatching :func:`fifo_chain_py`: compiled when numba is active."""
    if _USE_NUMBA:
        _fifo_chain_impl(t_cdel, svc, idle, queue_depth, submits, acks, starts, finishes)
        return
    fifo_chain_py(t_cdel, svc, idle, queue_depth, submits, acks, starts, finishes)
