"""Hardware emulation substrate: replayer, collector, async post-processing."""

from .batch import replay_back_to_back_batch, replay_with_idle_batch
from .collector import TraceCollector
from .qdepth import replay_queue_depth, replay_queue_depth_scalar
from .postprocess import detect_async_indices, revive_async
from .replayer import ReplayResult, replay_back_to_back, replay_with_idle

__all__ = [
    "TraceCollector",
    "detect_async_indices",
    "revive_async",
    "ReplayResult",
    "replay_back_to_back",
    "replay_back_to_back_batch",
    "replay_with_idle",
    "replay_with_idle_batch",
    "replay_queue_depth",
    "replay_queue_depth_scalar",
]
