"""Block-trace collector: the simulated ``blktrace``.

During hardware emulation the paper collects the regenerated trace
"using blktrace, which is a standard block trace tool in Linux".  The
simulator equivalent observes every submitted request together with its
:class:`~repro.storage.device.Completion` stamps and assembles a new
:class:`~repro.trace.trace.BlockTrace` carrying measured device times —
the data the post-processing stage needs.
"""

from __future__ import annotations

from typing import Any

from ..storage.device import Completion
from ..trace.trace import BlockTrace, TraceBuilder

__all__ = ["TraceCollector"]


class TraceCollector:
    """Accumulates per-request observations into a new block trace.

    The collector is intentionally dumb — it records exactly what a
    block-layer tracer sees (submit time, address, size, op, issue and
    completion stamps) and nothing the host privately knows (think
    times, sync flags).  Reconstruction quality must come from the
    inference, not from leaked ground truth.
    """

    def __init__(self, name: str = "", metadata: dict[str, Any] | None = None) -> None:
        self._builder = TraceBuilder(name=name, metadata=metadata)

    def __len__(self) -> int:
        return len(self._builder)

    def observe(
        self,
        submit: float,
        lba: int,
        size: int,
        op: int,
        completion: Completion,
    ) -> None:
        """Record one serviced request.

        ``issue`` is the driver-level dispatch stamp (the submit time),
        matching how MSPS/MSRC event tracing stamps requests "when they
        are issued from a device driver to the target disk"; the
        recorded device time therefore *includes* the channel transfer
        and any device queueing, exactly as an MSRC ``ResponseTime``
        does.
        """
        self._builder.append(
            timestamp=submit,
            lba=lba,
            size=size,
            op=op,
            issue=completion.submit,
            complete=completion.finish,
        )

    def build(self) -> BlockTrace:
        """Produce the collected trace (sorted by submit time)."""
        return self._builder.build(sort=True)
