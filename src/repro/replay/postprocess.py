"""Post-processing: reviving asynchronous timing (Section IV).

The hardware emulation replays synchronously, so a request the original
application issued *without* waiting (asynchronous mode — the
``(i-1)``-th request of Figure 2b) is spuriously delayed by the new
device's service time.  The paper's fix:

1. from the *old* trace, record the indices whose inter-arrival time is
   shorter than the (inferred or measured) device time — those
   submissions cannot have waited for the device;
2. in the *new* trace, for exactly those indices, subtract the new
   measured device time from the inter-arrival time "and update the
   next instruction based on the results".

:func:`detect_async_indices` implements step 1 and
:func:`revive_async` step 2.
"""

from __future__ import annotations

import numpy as np

from ..trace.trace import BlockTrace

__all__ = ["detect_async_indices", "revive_async"]


def detect_async_indices(tintt_us: np.ndarray, tsdev_us: np.ndarray) -> np.ndarray:
    """Gap indices whose old inter-arrival time undercuts the device time.

    ``tintt_us`` are the old trace's gaps; ``tsdev_us`` the device time
    of each gap's *leading* request (same length).  A gap shorter than
    the leading request's service time implies the next request was
    prepared while the device was still busy — an asynchronous
    submission.
    """
    tintt = np.asarray(tintt_us, dtype=np.float64)
    tsdev = np.asarray(tsdev_us, dtype=np.float64)
    if tintt.shape != tsdev.shape:
        raise ValueError("tintt and tsdev must align")
    return np.flatnonzero(tintt < tsdev)


def revive_async(
    new_trace: BlockTrace,
    async_indices: np.ndarray,
    min_gap_us: float | np.ndarray = 0.0,
    old_gaps_us: np.ndarray | None = None,
) -> BlockTrace:
    """Tighten the new trace's gaps at asynchronous submission points.

    For each flagged gap the *new* measured device time of the leading
    request is subtracted from that gap (clamped at ``min_gap_us``),
    and all subsequent timestamps shift left accordingly.  Per-request
    device times are preserved — only the submission schedule changes,
    which mirrors how an async submitter overlaps its next submission
    with the in-flight request.

    ``min_gap_us`` may be a scalar or a per-gap array (length
    ``len(new_trace) - 1``).  An asynchronous submitter still occupies
    the host for the channel hand-off, so the reconstruction pipeline
    passes each request's measured channel delay as the floor.

    ``old_gaps_us`` (optional, per-gap) refines the revival: an
    asynchronous gap contains *no* device wait at all — it is CPU burst
    plus channel occupancy, both host-side quantities that survive the
    hardware change — so when the old gaps are supplied each flagged
    gap is restored to the old gap itself, clamped between the channel
    floor and the replayed gap.

    Requires the new trace to carry measured device times (a replay
    product always does).
    """
    if not new_trace.has_device_times:
        raise ValueError("post-processing needs the new trace's measured device times")
    n = len(new_trace)
    if n < 2:
        return new_trace
    idx = np.asarray(async_indices, dtype=np.int64)
    if idx.size and (idx.min() < 0 or idx.max() >= n - 1):
        raise ValueError("async gap indices out of range")
    floor = np.asarray(min_gap_us, dtype=np.float64)
    if floor.ndim not in (0, 1):
        raise ValueError("min_gap_us must be a scalar or a per-gap array")
    if floor.ndim == 1 and len(floor) != n - 1:
        raise ValueError(f"per-gap floors must have length {n - 1}, got {len(floor)}")
    gaps = new_trace.inter_arrival_times()
    tsdev_new = new_trace.device_times()[:-1]
    adjusted = gaps.copy()
    floor_at_idx = floor[idx] if floor.ndim == 1 else floor
    if old_gaps_us is not None:
        old_arr = np.asarray(old_gaps_us, dtype=np.float64)
        if len(old_arr) != n - 1:
            raise ValueError(f"old gaps must have length {n - 1}, got {len(old_arr)}")
        adjusted[idx] = np.clip(old_arr[idx], floor_at_idx, gaps[idx])
    else:
        adjusted[idx] = np.maximum(gaps[idx] - tsdev_new[idx], floor_at_idx)
    new_ts = np.empty(n, dtype=np.float64)
    new_ts[0] = new_trace.timestamps[0]
    np.cumsum(adjusted, out=new_ts[1:])
    new_ts[1:] += new_ts[0]
    delta = new_ts - new_trace.timestamps
    assert new_trace.issues is not None and new_trace.completes is not None
    return BlockTrace(
        timestamps=new_ts,
        lbas=new_trace.lbas,
        sizes=new_trace.sizes,
        ops=new_trace.ops,
        issues=new_trace.issues + delta,
        completes=new_trace.completes + delta,
        syncs=new_trace.syncs,
        name=new_trace.name,
        metadata={**new_trace.metadata, "postprocessed": True, "n_async_gaps": int(idx.size)},
    )
