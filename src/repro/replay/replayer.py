"""Trace replayer: the hardware-emulation half of TraceTracker.

Section IV: "We then delay :math:`T_{idle}` using sleep() and issue the
i-th I/O instruction (composed of the same information of the old block
trace) to the underlying brand-new device.  We iterate this process for
all n I/O instructions.  During this phase, we collect the new block
trace using blktrace."

Here the sleep is virtual (the replayer advances a virtual clock) and
the device is a simulator, but the arithmetic is identical: request
``i + 1`` is submitted ``idle[i]`` microseconds after request ``i``
completes on the *new* device.  The collector records what blktrace
would see: submit, issue, and completion stamps per request.
"""

from __future__ import annotations

import numpy as np

from ..storage.device import Completion, StorageDevice
from ..trace.record import OpType
from ..trace.trace import BlockTrace
from .collector import TraceCollector

__all__ = ["ReplayResult", "replay_with_idle", "replay_back_to_back"]


class ReplayResult:
    """Outcome of a replay run, stamp columns in array form.

    Attributes
    ----------
    trace:
        The newly collected block trace (with measured device times).
    device_name:
        The device the replay ran against.
    submits, acks, starts, finishes:
        Per-request timing columns (µs), aligned with the trace — the
        four stamps of a :class:`~repro.storage.device.Completion`.
        Both the scalar and the vectorised batch replay engines fill
        these; the row-wise ``completions`` view is materialised only
        on demand.
    """

    __slots__ = ("trace", "device_name", "submits", "acks", "starts", "finishes", "_completions")

    def __init__(
        self,
        trace: BlockTrace,
        device_name: str,
        submits: np.ndarray,
        acks: np.ndarray,
        starts: np.ndarray,
        finishes: np.ndarray,
        completions: tuple[Completion, ...] | None = None,
    ) -> None:
        self.trace = trace
        self.device_name = device_name
        self.submits = np.asarray(submits, dtype=np.float64)
        self.acks = np.asarray(acks, dtype=np.float64)
        self.starts = np.asarray(starts, dtype=np.float64)
        self.finishes = np.asarray(finishes, dtype=np.float64)
        self._completions = completions

    @property
    def completions(self) -> tuple[Completion, ...]:
        """Row-wise completion stamps (materialised lazily)."""
        if self._completions is None:
            self._completions = tuple(
                Completion(submit=s, start=st, ack=a, finish=f)
                for s, st, a, f in zip(
                    self.submits.tolist(),
                    self.starts.tolist(),
                    self.acks.tolist(),
                    self.finishes.tolist(),
                )
            )
        return self._completions

    def device_times(self) -> np.ndarray:
        """Measured per-request device times on the new hardware."""
        return self.finishes - self.starts

    def latencies(self) -> np.ndarray:
        """End-to-end per-request latencies ``finish - submit``."""
        return self.finishes - self.submits

    def channel_delays(self) -> np.ndarray:
        """Per-request host-interface occupancy ``ack - submit``."""
        return self.acks - self.submits


def replay_with_idle(
    old_trace: BlockTrace,
    device: StorageDevice,
    idle_us: np.ndarray | None = None,
    method: str = "replay",
) -> ReplayResult:
    """Replay a trace on a device, sleeping ``idle_us[i]`` after request ``i``.

    Parameters
    ----------
    old_trace:
        The request pattern to re-issue (addresses, sizes, op types are
        preserved verbatim).
    device:
        Target storage; reset before the run for reproducibility.
    idle_us:
        Idle to insert after each request (length ``len(old_trace) - 1``
        or ``len(old_trace)``; the trailing entry, if present, is
        ignored).  ``None`` means no idle (back-to-back replay).
    method:
        Label stored in the produced trace's metadata.

    Replay is synchronous, as the paper's emulation is: the next
    request is prepared only after the previous one completes.  The
    asynchronous timing of the original workload is restored afterwards
    by :func:`repro.replay.postprocess.revive_async`.
    """
    n = len(old_trace)
    if n == 0:
        raise ValueError("cannot replay an empty trace")
    if idle_us is not None:
        idle_arr = np.asarray(idle_us, dtype=np.float64)
        if len(idle_arr) not in (n - 1, n):
            raise ValueError(f"idle array must have length {n - 1} (or {n}), got {len(idle_arr)}")
        if np.any(idle_arr < 0):
            raise ValueError("idle periods must be non-negative")
    else:
        idle_arr = np.zeros(max(0, n - 1), dtype=np.float64)
    device.reset()
    collector = TraceCollector(
        name=old_trace.name,
        metadata={
            **old_trace.metadata,
            "method": method,
            "replayed_on": device.name,
        },
    )
    clock = 0.0
    completions: list[Completion] = []
    for i in range(n):
        completion = device.submit(
            OpType(int(old_trace.ops[i])),
            int(old_trace.lbas[i]),
            int(old_trace.sizes[i]),
            clock,
        )
        completions.append(completion)
        collector.observe(
            submit=clock,
            lba=int(old_trace.lbas[i]),
            size=int(old_trace.sizes[i]),
            op=int(old_trace.ops[i]),
            completion=completion,
        )
        if i < n - 1:
            clock = completion.finish + float(idle_arr[i])
    return ReplayResult(
        trace=collector.build(),
        device_name=device.name,
        submits=np.array([c.submit for c in completions]),
        acks=np.array([c.ack for c in completions]),
        starts=np.array([c.start for c in completions]),
        finishes=np.array([c.finish for c in completions]),
        completions=tuple(completions),
    )


def replay_back_to_back(
    old_trace: BlockTrace, device: StorageDevice, method: str = "revision"
) -> ReplayResult:
    """Replay with zero inserted idle — the ``Revision`` baseline.

    Every request is issued the moment the previous one completes,
    which is how straight trace-replay tools drive a faster device:
    realistic :math:`T_{cdel}`/:math:`T_{sdev}`, but all user idleness
    and async overlap lost.
    """
    return replay_with_idle(old_trace, device, idle_us=None, method=method)
