"""Vectorised batch replay engine.

:func:`replay_with_idle_batch` produces results identical to the scalar
:func:`~repro.replay.replayer.replay_with_idle` while avoiding its
per-request Python overhead.  Two regimes:

1. **Vector path** — when the target device can price the whole request
   stream up front (``device.service_batch`` returns an array: the
   device's latencies are *gap-invariant*, a pure function of request
   order), all four stamp columns come out of one cumulative sum.  The
   scalar replayer's clock recurrence is

   .. math::

      ack_i = clock_i + T_{cdel,i}, \\quad
      finish_i = ack_i + svc_i, \\quad
      clock_{i+1} = finish_i + idle_i

   which is exactly a running sum over the interleaved sequence
   ``[T_cdel_0, svc_0, idle_0, T_cdel_1, svc_1, idle_1, ...]`` — and
   ``np.cumsum`` performs the same left-to-right chain of IEEE-754
   additions, so the stamps are *bit-identical* to the scalar loop's.

2. **Fast fallback** — devices whose latencies depend on real
   submission instants (e.g. a flash array with a write-back buffer
   draining in the background) return ``None`` from ``service_batch``.
   The engine then drives ``device._service`` directly through a tight
   loop that performs the same arithmetic as ``StorageDevice.submit``
   with the validation hoisted out and the trace assembled from columns
   instead of per-row appends.

Either way the produced :class:`~repro.replay.replayer.ReplayResult`
matches the scalar engine's stamps exactly; the property suite
(`tests/test_replay_batch.py`) enforces this across every device type.
"""

from __future__ import annotations

import numpy as np

from ..storage.device import StorageDevice
from ..trace.record import OpType
from ..trace.trace import BlockTrace
from .replayer import ReplayResult

__all__ = ["replay_with_idle_batch", "replay_back_to_back_batch"]


def _normalized_idle(n: int, idle_us: np.ndarray | None) -> np.ndarray:
    """Validate and pad the idle array to length ``n`` (trailing zero)."""
    if idle_us is None:
        return np.zeros(n, dtype=np.float64)
    idle_arr = np.asarray(idle_us, dtype=np.float64)
    if len(idle_arr) not in (n - 1, n):
        raise ValueError(f"idle array must have length {n - 1} (or {n}), got {len(idle_arr)}")
    if np.any(idle_arr < 0):
        raise ValueError("idle periods must be non-negative")
    padded = np.zeros(n, dtype=np.float64)
    padded[: n - 1] = idle_arr[: n - 1]
    return padded


def _replay_metadata(old_trace: BlockTrace, device: StorageDevice, method: str) -> dict:
    return {**old_trace.metadata, "method": method, "replayed_on": device.name}


def replay_with_idle_batch(
    old_trace: BlockTrace,
    device: StorageDevice,
    idle_us: np.ndarray | None = None,
    method: str = "replay",
) -> ReplayResult:
    """Batch equivalent of :func:`~repro.replay.replayer.replay_with_idle`.

    Same contract and same results as the scalar replayer; see the
    module docstring for how the two execution regimes achieve that.
    """
    n = len(old_trace)
    if n == 0:
        raise ValueError("cannot replay an empty trace")
    idle = _normalized_idle(n, idle_us)
    if np.any(old_trace.lbas < 0):
        raise ValueError("lba must be non-negative")
    device.reset()
    svc = device.service_batch(old_trace.ops, old_trace.lbas, old_trace.sizes)
    metadata = _replay_metadata(old_trace, device, method)
    if svc is not None:
        t_cdel = device.channel.delay_batch_us(old_trace.ops, old_trace.sizes)
        # One interleaved running sum reproduces the scalar clock chain
        # addition-for-addition (see module docstring).
        increments = np.empty(3 * n, dtype=np.float64)
        increments[0::3] = t_cdel
        increments[1::3] = svc
        increments[2::3] = idle
        cum = np.cumsum(increments)
        acks = cum[0::3]
        finishes = cum[1::3]
        submits = np.empty(n, dtype=np.float64)
        submits[0] = 0.0
        submits[1:] = cum[2::3][:-1]
        starts = acks
    else:
        submits, acks, starts, finishes = _replay_scalar_fast(old_trace, device, idle)
    trace = BlockTrace(
        timestamps=submits,
        lbas=old_trace.lbas,
        sizes=old_trace.sizes,
        ops=old_trace.ops,
        issues=submits.copy(),  # driver-level stamp, as the collector records
        completes=finishes,
        name=old_trace.name,
        metadata=metadata,
    )
    return ReplayResult(
        trace=trace,
        device_name=device.name,
        submits=submits,
        acks=acks,
        starts=starts,
        finishes=finishes,
    )


def _replay_scalar_fast(
    old_trace: BlockTrace, device: StorageDevice, idle: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Tight scalar loop for gap-sensitive devices.

    Performs the exact per-request arithmetic of ``device.submit`` —
    channel delay, then ``_service`` — with conversions hoisted out of
    the loop.  The device has already been reset and the columns
    validated by the caller.
    """
    n = len(old_trace)
    ops = [OpType.READ if op == 0 else OpType.WRITE for op in old_trace.ops.tolist()]
    lbas = old_trace.lbas.tolist()
    sizes = old_trace.sizes.tolist()
    idle_list = idle.tolist()
    t_cdel = device.channel.delay_batch_us(old_trace.ops, old_trace.sizes).tolist()
    service = device._service
    submits = np.empty(n, dtype=np.float64)
    acks = np.empty(n, dtype=np.float64)
    starts = np.empty(n, dtype=np.float64)
    finishes = np.empty(n, dtype=np.float64)
    clock = 0.0
    for i in range(n):
        op = ops[i]
        ack = clock + t_cdel[i]
        start, finish = service(op, lbas[i], sizes[i], ack)
        submits[i] = clock
        acks[i] = ack
        starts[i] = start
        finishes[i] = finish
        clock = finish + idle_list[i]
    return submits, acks, starts, finishes


def replay_back_to_back_batch(
    old_trace: BlockTrace, device: StorageDevice, method: str = "revision"
) -> ReplayResult:
    """Batch equivalent of :func:`~repro.replay.replayer.replay_back_to_back`."""
    return replay_with_idle_batch(old_trace, device, idle_us=None, method=method)
