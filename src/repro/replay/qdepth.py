"""Queue-depth replay: asynchronous replay with bounded outstanding I/O.

The paper's emulation issues synchronously and repairs asynchrony in
post-processing.  An alternative (and the natural extension once the
sync flags are *known*, as they are for synthetic traces) is to replay
with a bounded submission window, the way ``fio`` drives a device at
``iodepth > 1``: up to ``queue_depth`` requests may be in flight; a new
request is submitted as soon as a slot frees *and* its think time has
elapsed.

Two engines produce identical results:

- :func:`replay_queue_depth_scalar` — the original discrete-event loop
  over :meth:`~repro.storage.device.StorageDevice.submit`, kept as the
  readable specification and the bit-identity oracle for the test
  suite.  Its in-flight window is a plain list it re-filters per
  request (O(n·qd) comprehensions), and every request pays the full
  ``submit``/``Completion``/collector overhead.
- :func:`replay_queue_depth` — the production engine.  When the device
  prices the whole stream up front (``service_batch``) *and* queueing
  is a single FIFO server (``fifo_single_server``, or trivially at
  ``queue_depth == 1``), the window recurrence collapses to scalar
  arithmetic over precomputed channel-delay and service columns: the
  in-flight set of a FIFO device is always the trailing ``qd``
  requests, so "wait for the oldest outstanding completion" is one
  comparison against ``finishes[i - qd]``.  Devices with internal
  parallelism take the *plan* engine when they provide one
  (``device.replay_plan``, flash and flash arrays): fragment fan-out
  and memoised relative-service entries are resolved for the whole
  stream up front by the columnar device kernels, and the event loop
  runs each member's fast paths inline — no per-request key
  construction, memo lookups, or method dispatch, and busy-state page
  walks run from the shape's prefetched occupancy walk.  Everything
  else falls back to a heap-based discrete-event loop that drives
  ``device._service`` directly with the per-request conversions
  hoisted out.  Both event engines keep the in-flight window in a
  binary heap with expiry batched per completion wave: expired
  completions are only swept when the window *looks* full, so a
  replay that never saturates the window pays one length check per
  request instead of a pop scan.

Used by tests and available to studies that want target-load
sensitivity (e.g. how reconstruction fidelity changes when the replayer
is allowed genuine overlap).
"""

from __future__ import annotations

import heapq

import numpy as np

from ..storage.device import StorageDevice
from ..storage.flash import _entry_commit, _entry_idle_sparse
from ..trace.record import OpType
from ..trace.trace import BlockTrace
from .collector import TraceCollector
from .replayer import ReplayResult

__all__ = ["replay_queue_depth", "replay_queue_depth_scalar"]


def _validated_idle(n: int, idle_us: np.ndarray | None) -> np.ndarray:
    """Shared argument validation for both engines (length ``n - 1``)."""
    if idle_us is not None:
        idle_arr = np.asarray(idle_us, dtype=np.float64)
        if len(idle_arr) not in (n - 1, n):
            raise ValueError(f"idle array must have length {n - 1} (or {n}), got {len(idle_arr)}")
        if np.any(idle_arr < 0):
            raise ValueError("idle periods must be non-negative")
        return idle_arr
    return np.zeros(max(0, n - 1), dtype=np.float64)


def _qdepth_metadata(old_trace: BlockTrace, device: StorageDevice, method: str, qd: int) -> dict:
    return {
        **old_trace.metadata,
        "method": method,
        "replayed_on": device.name,
        "queue_depth": qd,
    }


def replay_queue_depth(
    old_trace: BlockTrace,
    device: StorageDevice,
    idle_us: np.ndarray | None = None,
    queue_depth: int = 4,
    method: str = "qdepth-replay",
) -> ReplayResult:
    """Replay with up to ``queue_depth`` requests in flight.

    Submission rule: request ``i + 1`` becomes *ready* ``idle_us[i]``
    after request ``i`` was submitted (think time runs from submission,
    not completion — the asynchronous interpretation), and is submitted
    at ``max(ready, slot_free)`` where ``slot_free`` is when the oldest
    in-flight request completes, window-style.

    With ``queue_depth=1`` this degenerates to the synchronous replay of
    :func:`repro.replay.replayer.replay_with_idle` (think measured from
    completion).

    Stamps are bit-identical to :func:`replay_queue_depth_scalar`
    (property-tested across every device type); see the module
    docstring for how the two execution regimes achieve that.

    Returns the same :class:`ReplayResult` shape as the synchronous
    replayer.
    """
    n = len(old_trace)
    if n == 0:
        raise ValueError("cannot replay an empty trace")
    if queue_depth < 1:
        raise ValueError("queue depth must be at least 1")
    idle_arr = _validated_idle(n, idle_us)
    if np.any(old_trace.lbas < 0):
        raise ValueError("lba must be non-negative")
    device.reset()
    # The precomputed-service regime needs gap-invariant durations for
    # the actual arrival pattern.  ``service_batch`` guarantees them for
    # idle-at-arrival streams, which queue_depth == 1 produces; for
    # deeper windows a request can arrive while the device is busy, and
    # only a single-FIFO-server device (``fifo_single_server``) keeps
    # its durations order-determined under queued arrivals.
    svc = None
    if queue_depth == 1 or device.fifo_single_server:
        svc = device.service_batch(old_trace.ops, old_trace.lbas, old_trace.sizes)
    metadata = _qdepth_metadata(old_trace, device, method, queue_depth)
    t_cdel = device.channel.delay_batch_us(old_trace.ops, old_trace.sizes)
    if svc is not None:
        submits, acks, starts, finishes = _qdepth_fifo_fast(
            t_cdel, svc, idle_arr, queue_depth
        )
    else:
        plan = device.replay_plan(old_trace.ops, old_trace.lbas, old_trace.sizes)
        if plan is not None:
            submits, acks, starts, finishes = _qdepth_plan_events(
                device, plan, t_cdel, idle_arr, queue_depth
            )
        else:
            submits, acks, starts, finishes = _qdepth_events(
                old_trace, device, t_cdel, idle_arr, queue_depth
            )
    trace = BlockTrace(
        timestamps=submits,
        lbas=old_trace.lbas,
        sizes=old_trace.sizes,
        ops=old_trace.ops,
        issues=submits.copy(),  # driver-level stamp, as the collector records
        completes=finishes,
        name=old_trace.name,
        metadata=metadata,
    )
    return ReplayResult(
        trace=trace,
        device_name=device.name,
        submits=submits,
        acks=acks,
        starts=starts,
        finishes=finishes,
    )


def _qdepth_fifo_fast(
    t_cdel: np.ndarray, svc: np.ndarray, idle_arr: np.ndarray, queue_depth: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Window recurrence over precomputed channel/service columns.

    For a FIFO single-server device, finishes are non-decreasing, so
    the in-flight set after filtering is always the trailing window and
    "the oldest outstanding completion" is ``finishes[i - qd]``.  The
    per-request arithmetic is exactly the scalar engine's chain —
    ``clock → ack = clock + t_cdel → start = max(ack, busy) →
    finish = start + svc`` — performed on Python floats (same IEEE-754
    doubles, same operation order, so the stamps are bit-identical).
    """
    n = len(svc)
    t_cdel_l = t_cdel.tolist()
    svc_l = svc.tolist()
    idle_l = idle_arr.tolist()
    finishes_l: list[float] = []
    append_finish = finishes_l.append
    submits = np.empty(n, dtype=np.float64)
    acks = np.empty(n, dtype=np.float64)
    starts = np.empty(n, dtype=np.float64)
    finishes = np.empty(n, dtype=np.float64)
    clock = 0.0
    prev_finish = 0.0
    qd = queue_depth
    for i in range(n):
        if i >= qd and finishes_l[i - qd] > clock:
            # Window full: wait for the oldest outstanding completion.
            clock = finishes_l[i - qd]
        ack = clock + t_cdel_l[i]
        start = ack if ack >= prev_finish else prev_finish
        finish = start + svc_l[i]
        submits[i] = clock
        acks[i] = ack
        starts[i] = start
        finishes[i] = finish
        append_finish(finish)
        prev_finish = finish
        if i < n - 1:
            clock = ack + idle_l[i]
    return submits, acks, starts, finishes


def _qdepth_events(
    old_trace: BlockTrace,
    device: StorageDevice,
    t_cdel: np.ndarray,
    idle_arr: np.ndarray,
    queue_depth: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Heap-based discrete-event loop for gap-sensitive devices.

    Performs the exact per-request arithmetic of ``device.submit`` with
    the validation and conversions hoisted out; the in-flight window
    lives in a binary heap with lazy expiry (completions at or before
    the clock are popped on demand), replacing the scalar engine's
    O(n·qd) list re-filtering.
    """
    n = len(old_trace)
    ops = [OpType.READ if op == 0 else OpType.WRITE for op in old_trace.ops.tolist()]
    lbas = old_trace.lbas.tolist()
    sizes = old_trace.sizes.tolist()
    t_cdel_l = t_cdel.tolist()
    idle_l = idle_arr.tolist()
    service = device._service
    heappush, heappop = heapq.heappush, heapq.heappop
    in_flight: list[float] = []
    submits = np.empty(n, dtype=np.float64)
    acks = np.empty(n, dtype=np.float64)
    starts = np.empty(n, dtype=np.float64)
    finishes = np.empty(n, dtype=np.float64)
    clock = 0.0
    for i in range(n):
        # Expired completions are swept only when the window looks
        # full — the heap may carry stale entries, but the blocking
        # decision (and hence every stamp) is unchanged: after the
        # sweep the live count is exactly what eager expiry would see.
        if len(in_flight) >= queue_depth:
            while in_flight and in_flight[0] <= clock:
                heappop(in_flight)
            if len(in_flight) >= queue_depth:
                clock = heappop(in_flight)
        ack = clock + t_cdel_l[i]
        start, finish = service(ops[i], lbas[i], sizes[i], ack)
        heappush(in_flight, finish)
        submits[i] = clock
        acks[i] = ack
        starts[i] = start
        finishes[i] = finish
        if i < n - 1:
            clock = ack + idle_l[i]
    return submits, acks, starts, finishes


def _qdepth_plan_events(
    device: StorageDevice,
    plan,
    t_cdel: np.ndarray,
    idle_arr: np.ndarray,
    queue_depth: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Event loop over a precomputed device plan (flash / flash array).

    Request ``i`` owns fragments ``plan.frags[offsets[i]:offsets[i+1]]``
    in the exact order the scalar fragment walk visits them; each
    fragment carries its member index and memoised relative-service
    entry.  The loop body inlines ``FlashSSD._service`` branch for
    branch — horizon check, slot-range idle probe, slot-range commit,
    write-buffer admission — so every stamp and every piece of member
    state (busy stamps, buffer occupancy, horizon) is bit-identical to
    driving ``_service`` per request, with the per-request key
    construction, memo lookups, and method dispatch all hoisted into
    plan construction and the per-die loops collapsed into list-slice
    operations (see ``repro.storage.flash._entry_commit``).
    """
    offsets = plan.offsets
    frags = plan.frags
    array_level = plan.array_level
    members = plan.members_of(device)
    n = len(offsets) - 1
    t_cdel_l = t_cdel.tolist()
    idle_l = idle_arr.tolist()
    heappush, heappop = heapq.heappush, heapq.heappop
    in_flight: list[float] = []
    acks: list[float] = []
    finishes: list[float] = []
    #: Rare per-request deviations recorded as (index, value) pairs;
    #: the dense submit/start columns are derived vectorised afterwards.
    clock_bumps: list[tuple[int, float]] = []
    start_overrides: list[tuple[int, float]] = []
    # Per-member state mirrored into locals: busy lists are shared
    # objects (mutated in place, so the member's own slow paths stay
    # coherent), horizons and buffer byte counts are plain floats/ints
    # written back once at the end — and synced whenever a slow path
    # re-enters member methods that read them.
    dbs = [m._die_busy for m in members]
    cbs = [m._chan_busy for m in members]
    hors = [m._state_horizon for m in members]
    bufs = [m._buffered for m in members]
    bbs = [m._buffered_bytes for m in members]
    caps = [m._buffer_capacity for m in members]
    bw_us = [m.geometry.buffer_write_us for m in members]
    bw4 = [m.channel.bandwidth_mb_s * 4 for m in members]
    clock = 0.0
    qd = queue_depth
    for i in range(n):
        if len(in_flight) >= qd:
            while in_flight and in_flight[0] <= clock:
                heappop(in_flight)
            if len(in_flight) >= qd:
                clock = heappop(in_flight)
                clock_bumps.append((i, clock))
        ack = clock + t_cdel_l[i]
        finish = ack
        for k in range(offsets[i], offsets[i + 1]):
            mi, e = frags[k]
            db = dbs[mi]
            cb = cbs[mi]
            if e.is_read:
                if ack >= hors[mi] or _entry_idle_sparse(db, cb, e, ack):
                    _entry_commit(db, cb, e, ack)
                    h = ack + e.horizon
                    if h > hors[mi]:
                        hors[mi] = h
                    f = ack + e.svc
                else:
                    f = members[mi]._busy_read(e, ack)
                    if f > hors[mi]:
                        hors[mi] = f
            elif e.buffered:
                nbytes = e.nbytes
                buf = bufs[mi]
                bb = bbs[mi]
                while buf and buf[0][0] <= ack:
                    __, freed = buf.popleft()
                    bb -= freed
                if bb + nbytes <= caps[mi] and (
                    ack >= hors[mi] or _entry_idle_sparse(db, cb, e, ack)
                ):
                    buf.append((ack + e.drain_rel, nbytes))
                    bbs[mi] = bb + nbytes
                    _entry_commit(db, cb, e, ack)
                    h = ack + e.horizon
                    if h > hors[mi]:
                        hors[mi] = h
                    f = ack + e.svc
                else:
                    ssd = members[mi]
                    ssd._buffered_bytes = bb
                    start = ssd._buffer_admit(nbytes, ack)
                    ack_done = start + bw_us[mi] + nbytes / bw4[mi]
                    drain = ssd._busy_program(e, ack_done)
                    buf.append((drain, nbytes))
                    bbs[mi] = ssd._buffered_bytes + nbytes
                    if drain > hors[mi]:
                        hors[mi] = drain
                    f = ack_done
                    if not array_level:
                        start_overrides.append((i, start))
            else:
                if ack >= hors[mi] or _entry_idle_sparse(db, cb, e, ack):
                    _entry_commit(db, cb, e, ack)
                    h = ack + e.horizon
                    if h > hors[mi]:
                        hors[mi] = h
                    f = ack + e.svc
                else:
                    f = members[mi]._busy_program(e, ack)
                    if f > hors[mi]:
                        hors[mi] = f
            if f > finish:
                finish = f
        heappush(in_flight, finish)
        acks.append(ack)
        finishes.append(finish)
        if i < n - 1:
            clock = ack + idle_l[i]
    for m, h, bb in zip(members, hors, bbs):
        m._state_horizon = h
        m._buffered_bytes = bb
    acks_arr = np.array(acks, dtype=np.float64)
    finishes_arr = np.array(finishes, dtype=np.float64)
    # Submit column: the clock chain is ack + idle elementwise (same
    # operands the loop added), overridden where the window-full pops
    # bumped the clock.
    submits_arr = np.empty(n, dtype=np.float64)
    submits_arr[0] = 0.0
    if n > 1:
        submits_arr[1:] = acks_arr[:-1] + idle_arr[: n - 1]
    for i, bumped in clock_bumps:
        submits_arr[i] = bumped
    # Start column: the device admits at the ready time everywhere
    # except a standalone SSD's buffered-write slow path.
    starts_arr = acks_arr.copy()
    for i, start in start_overrides:
        starts_arr[i] = start
    return submits_arr, acks_arr, starts_arr, finishes_arr


def replay_queue_depth_scalar(
    old_trace: BlockTrace,
    device: StorageDevice,
    idle_us: np.ndarray | None = None,
    queue_depth: int = 4,
    method: str = "qdepth-replay",
) -> ReplayResult:
    """Reference queue-depth replay (the bit-identity oracle).

    The original request-at-a-time loop over ``device.submit`` with a
    list-filtered in-flight window.  Kept verbatim as the readable
    specification; the property suite asserts
    :func:`replay_queue_depth` reproduces its stamps bit-for-bit.
    """
    n = len(old_trace)
    if n == 0:
        raise ValueError("cannot replay an empty trace")
    if queue_depth < 1:
        raise ValueError("queue depth must be at least 1")
    idle_arr = _validated_idle(n, idle_us)
    device.reset()
    collector = TraceCollector(
        name=old_trace.name,
        metadata=_qdepth_metadata(old_trace, device, method, queue_depth),
    )
    completions = []
    in_flight_finish: list[float] = []  # finish times of outstanding requests
    clock = 0.0
    for i in range(n):
        # Free slots that completed by now; if the window is full, wait
        # for the oldest outstanding completion.
        in_flight_finish = [f for f in in_flight_finish if f > clock]
        if len(in_flight_finish) >= queue_depth:
            in_flight_finish.sort()
            clock = in_flight_finish[0]
            in_flight_finish = in_flight_finish[1:]
        if queue_depth == 1 and completions:
            # Degenerate synchronous mode: think runs from completion.
            clock = max(clock, completions[-1].finish)
        completion = device.submit(
            OpType(int(old_trace.ops[i])),
            int(old_trace.lbas[i]),
            int(old_trace.sizes[i]),
            clock,
        )
        completions.append(completion)
        in_flight_finish.append(completion.finish)
        collector.observe(
            submit=clock,
            lba=int(old_trace.lbas[i]),
            size=int(old_trace.sizes[i]),
            op=int(old_trace.ops[i]),
            completion=completion,
        )
        if i < n - 1:
            # Host is occupied for the channel hand-off, then thinks.
            clock = completion.ack + float(idle_arr[i])
    return ReplayResult(
        trace=collector.build(),
        device_name=device.name,
        submits=np.array([c.submit for c in completions]),
        acks=np.array([c.ack for c in completions]),
        starts=np.array([c.start for c in completions]),
        finishes=np.array([c.finish for c in completions]),
        completions=tuple(completions),
    )
