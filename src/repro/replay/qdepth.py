"""Queue-depth replay: asynchronous replay with bounded outstanding I/O.

The paper's emulation issues synchronously and repairs asynchrony in
post-processing.  An alternative (and the natural extension once the
sync flags are *known*, as they are for synthetic traces) is to replay
with a bounded submission window, the way ``fio`` drives a device at
``iodepth > 1``: up to ``queue_depth`` requests may be in flight; a new
request is submitted as soon as a slot frees *and* its think time has
elapsed.

Two engines produce identical results:

- :func:`replay_queue_depth_scalar` — the original discrete-event loop
  over :meth:`~repro.storage.device.StorageDevice.submit`, kept as the
  readable specification and the bit-identity oracle for the test
  suite.  Its in-flight window is a plain list it re-filters per
  request (O(n·qd) comprehensions), and every request pays the full
  ``submit``/``Completion``/collector overhead.
- :func:`replay_queue_depth` — the production engine.  When the device
  prices the whole stream up front (``service_batch``) *and* queueing
  is a single FIFO server (``fifo_single_server``, or trivially at
  ``queue_depth == 1``), the window recurrence collapses to scalar
  arithmetic over precomputed channel-delay and service columns: the
  in-flight set of a FIFO device is always the trailing ``qd``
  requests, so "wait for the oldest outstanding completion" is one
  comparison against ``finishes[i - qd]``.  Devices with internal
  parallelism take the *plan* engine when they provide one
  (``device.replay_plan``, flash and flash arrays): fragment fan-out
  and memoised relative-service entries are resolved for the whole
  stream up front by the columnar device kernels, and the event loop
  runs each member's fast paths inline — no per-request key
  construction, memo lookups, or method dispatch, and busy-state page
  walks run from the shape's prefetched occupancy walk.  Everything
  else falls back to a heap-based discrete-event loop that drives
  ``device._service`` directly with the per-request conversions
  hoisted out.  Both event engines keep the in-flight window in a
  binary heap with expiry batched per completion wave: expired
  completions are only swept when the window *looks* full, so a
  replay that never saturates the window pays one length check per
  request instead of a pop scan.

Epoch-batched engine
--------------------
At ``queue_depth > 1`` devices with a plan take the *epoch* engine
(:func:`_qdepth_epoch_events`), which restructures the per-event plan
loop around a simple observation: the submit/ack clock chain only
depends on fragment outcomes through window-full clock bumps, and a
replay that keeps up with its window never bumps.  The engine
therefore advances the clock one *epoch* (a block of requests) at a
time — optimistic serial two-add chain, no heap — then drains each
member's fragments for the epoch as structure-of-arrays waves:
request-sorted ack gathers, a vectorised ``ack + horizon`` candidate
column, and an exclusive running max that classifies every fragment as
provably-idle (``ack >= horizon upper bound`` ⇒ the idle probe must
succeed, because the probe *is* the decision — the scalar engine's
horizon test is just a shortcut for it) or possibly-busy.  Only the
possibly-busy fragments and the write fragments (buffer admission is
order-dependent) are walked serially; provably-idle reads commit their
memoised stamps in a tight slice-assignment loop.  The epoch then
validates its no-bump assumption exactly — every request must finish
by the time the request ``queue_depth`` behind it submits, plus a
pseudo-pair check for completions carried in flight across epoch
boundaries — and on any violation rolls the member state back to the
epoch snapshot and replays the epoch through the retained serial plan
loop (bit-identical by construction), adapting the epoch size.  The
scalar replayer and the per-event plan engine are both retained as
bit-identity oracles, and an optional numba tier
(:mod:`repro.replay.fastpath`, the ``repro[fast]`` extra) compiles the
serial chains without changing a single stamp.

Used by tests and available to studies that want target-load
sensitivity (e.g. how reconstruction fidelity changes when the replayer
is allowed genuine overlap).
"""

from __future__ import annotations

import heapq

import numpy as np

from ..storage.device import StorageDevice
from ..storage.flash import _entries_apply_run, _entry_commit, _entry_idle_sparse
from ..storage.kernels import exclusive_running_max
from ..trace.record import OpType
from ..trace.trace import BlockTrace
from .collector import TraceCollector
from .fastpath import ack_chain, fifo_chain
from .replayer import ReplayResult

__all__ = ["replay_queue_depth", "replay_queue_depth_scalar"]


def _validated_idle(n: int, idle_us: np.ndarray | None) -> np.ndarray:
    """Shared argument validation for both engines (length ``n - 1``)."""
    if idle_us is not None:
        idle_arr = np.asarray(idle_us, dtype=np.float64)
        if len(idle_arr) not in (n - 1, n):
            raise ValueError(f"idle array must have length {n - 1} (or {n}), got {len(idle_arr)}")
        if np.any(idle_arr < 0):
            raise ValueError("idle periods must be non-negative")
        return idle_arr
    return np.zeros(max(0, n - 1), dtype=np.float64)


def _qdepth_metadata(old_trace: BlockTrace, device: StorageDevice, method: str, qd: int) -> dict:
    return {
        **old_trace.metadata,
        "method": method,
        "replayed_on": device.name,
        "queue_depth": qd,
    }


def replay_queue_depth(
    old_trace: BlockTrace,
    device: StorageDevice,
    idle_us: np.ndarray | None = None,
    queue_depth: int = 4,
    method: str = "qdepth-replay",
    engine: str = "auto",
) -> ReplayResult:
    """Replay with up to ``queue_depth`` requests in flight.

    Submission rule: request ``i + 1`` becomes *ready* ``idle_us[i]``
    after request ``i`` was submitted (think time runs from submission,
    not completion — the asynchronous interpretation), and is submitted
    at ``max(ready, slot_free)`` where ``slot_free`` is when the oldest
    in-flight request completes, window-style.

    With ``queue_depth=1`` this degenerates to the synchronous replay of
    :func:`repro.replay.replayer.replay_with_idle` (think measured from
    completion).

    Stamps are bit-identical to :func:`replay_queue_depth_scalar`
    (property-tested across every device type); see the module
    docstring for how the two execution regimes achieve that.

    ``engine`` selects the execution strategy for plan-capable devices:
    ``"auto"`` (default) picks the epoch-batched engine at
    ``queue_depth > 1`` and the per-event plan loop otherwise;
    ``"epoch"``, ``"plan"`` and ``"events"`` force a specific engine
    (used by the differential identity suite and the benchmarks — all
    three produce bit-identical stamps).  Devices without a plan fall
    back to the heap event loop under every setting.

    Returns the same :class:`ReplayResult` shape as the synchronous
    replayer.
    """
    if engine not in ("auto", "epoch", "plan", "events"):
        raise ValueError(f"unknown engine {engine!r}")
    n = len(old_trace)
    if n == 0:
        raise ValueError("cannot replay an empty trace")
    if queue_depth < 1:
        raise ValueError("queue depth must be at least 1")
    idle_arr = _validated_idle(n, idle_us)
    if np.any(old_trace.lbas < 0):
        raise ValueError("lba must be non-negative")
    device.reset()
    # The precomputed-service regime needs gap-invariant durations for
    # the actual arrival pattern.  ``service_batch`` guarantees them for
    # idle-at-arrival streams, which queue_depth == 1 produces; for
    # deeper windows a request can arrive while the device is busy, and
    # only a single-FIFO-server device (``fifo_single_server``) keeps
    # its durations order-determined under queued arrivals.
    svc = None
    if engine == "auto" and (queue_depth == 1 or device.fifo_single_server):
        svc = device.service_batch(old_trace.ops, old_trace.lbas, old_trace.sizes)
    metadata = _qdepth_metadata(old_trace, device, method, queue_depth)
    t_cdel = device.channel.delay_batch_us(old_trace.ops, old_trace.sizes)
    if svc is not None:
        submits, acks, starts, finishes = _qdepth_fifo_fast(
            t_cdel, svc, idle_arr, queue_depth
        )
    elif engine == "events":
        submits, acks, starts, finishes = _qdepth_events(
            old_trace, device, t_cdel, idle_arr, queue_depth
        )
    else:
        plan = device.replay_plan(old_trace.ops, old_trace.lbas, old_trace.sizes)
        if plan is None:
            submits, acks, starts, finishes = _qdepth_events(
                old_trace, device, t_cdel, idle_arr, queue_depth
            )
        elif engine == "plan" or queue_depth == 1:
            submits, acks, starts, finishes = _qdepth_plan_events(
                device, plan, t_cdel, idle_arr, queue_depth
            )
        else:
            submits, acks, starts, finishes = _qdepth_epoch_events(
                device, plan, t_cdel, idle_arr, queue_depth
            )
    trace = BlockTrace(
        timestamps=submits,
        lbas=old_trace.lbas,
        sizes=old_trace.sizes,
        ops=old_trace.ops,
        issues=submits.copy(),  # driver-level stamp, as the collector records
        completes=finishes,
        name=old_trace.name,
        metadata=metadata,
    )
    return ReplayResult(
        trace=trace,
        device_name=device.name,
        submits=submits,
        acks=acks,
        starts=starts,
        finishes=finishes,
    )


def _qdepth_fifo_fast(
    t_cdel: np.ndarray, svc: np.ndarray, idle_arr: np.ndarray, queue_depth: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Window recurrence over precomputed channel/service columns.

    For a FIFO single-server device, finishes are non-decreasing, so
    the in-flight set after filtering is always the trailing window and
    "the oldest outstanding completion" is ``finishes[i - qd]``.  The
    per-request arithmetic is exactly the scalar engine's chain —
    ``clock → ack = clock + t_cdel → start = max(ack, busy) →
    finish = start + svc`` — performed on Python floats (same IEEE-754
    doubles, same operation order, so the stamps are bit-identical).
    The chain itself lives in :mod:`repro.replay.fastpath` so the
    optional numba tier can compile it without changing a stamp.
    """
    n = len(svc)
    submits = np.empty(n, dtype=np.float64)
    acks = np.empty(n, dtype=np.float64)
    starts = np.empty(n, dtype=np.float64)
    finishes = np.empty(n, dtype=np.float64)
    fifo_chain(t_cdel, svc, idle_arr, queue_depth, submits, acks, starts, finishes)
    return submits, acks, starts, finishes


def _qdepth_events(
    old_trace: BlockTrace,
    device: StorageDevice,
    t_cdel: np.ndarray,
    idle_arr: np.ndarray,
    queue_depth: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Heap-based discrete-event loop for gap-sensitive devices.

    Performs the exact per-request arithmetic of ``device.submit`` with
    the validation and conversions hoisted out; the in-flight window
    lives in a binary heap with lazy expiry (completions at or before
    the clock are popped on demand), replacing the scalar engine's
    O(n·qd) list re-filtering.
    """
    n = len(old_trace)
    ops = [OpType.READ if op == 0 else OpType.WRITE for op in old_trace.ops.tolist()]
    lbas = old_trace.lbas.tolist()
    sizes = old_trace.sizes.tolist()
    t_cdel_l = t_cdel.tolist()
    idle_l = idle_arr.tolist()
    service = device._service
    heappush, heappop = heapq.heappush, heapq.heappop
    in_flight: list[float] = []
    submits = np.empty(n, dtype=np.float64)
    acks = np.empty(n, dtype=np.float64)
    starts = np.empty(n, dtype=np.float64)
    finishes = np.empty(n, dtype=np.float64)
    clock = 0.0
    for i in range(n):
        # Expired completions are swept only when the window looks
        # full — the heap may carry stale entries, but the blocking
        # decision (and hence every stamp) is unchanged: after the
        # sweep the live count is exactly what eager expiry would see.
        if len(in_flight) >= queue_depth:
            while in_flight and in_flight[0] <= clock:
                heappop(in_flight)
            if len(in_flight) >= queue_depth:
                clock = heappop(in_flight)
        ack = clock + t_cdel_l[i]
        start, finish = service(ops[i], lbas[i], sizes[i], ack)
        heappush(in_flight, finish)
        submits[i] = clock
        acks[i] = ack
        starts[i] = start
        finishes[i] = finish
        if i < n - 1:
            clock = ack + idle_l[i]
    return submits, acks, starts, finishes


def _qdepth_plan_events(
    device: StorageDevice,
    plan,
    t_cdel: np.ndarray,
    idle_arr: np.ndarray,
    queue_depth: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Event loop over a precomputed device plan (flash / flash array).

    Request ``i`` owns fragments ``plan.frags[offsets[i]:offsets[i+1]]``
    in the exact order the scalar fragment walk visits them; each
    fragment carries its member index and memoised relative-service
    entry.  The loop body inlines ``FlashSSD._service`` branch for
    branch — horizon check, slot-range idle probe, slot-range commit,
    write-buffer admission — so every stamp and every piece of member
    state (busy stamps, buffer occupancy, horizon) is bit-identical to
    driving ``_service`` per request, with the per-request key
    construction, memo lookups, and method dispatch all hoisted into
    plan construction and the per-die loops collapsed into list-slice
    operations (see ``repro.storage.flash._entry_commit``).
    """
    offsets = plan.offsets
    frags = plan.frags
    array_level = plan.array_level
    members = plan.members_of(device)
    n = len(offsets) - 1
    t_cdel_l = t_cdel.tolist()
    idle_l = idle_arr.tolist()
    heappush, heappop = heapq.heappush, heapq.heappop
    in_flight: list[float] = []
    acks: list[float] = []
    finishes: list[float] = []
    #: Rare per-request deviations recorded as (index, value) pairs;
    #: the dense submit/start columns are derived vectorised afterwards.
    clock_bumps: list[tuple[int, float]] = []
    start_overrides: list[tuple[int, float]] = []
    # Per-member state mirrored into locals: busy lists are shared
    # objects (mutated in place, so the member's own slow paths stay
    # coherent), horizons and buffer byte counts are plain floats/ints
    # written back once at the end — and synced whenever a slow path
    # re-enters member methods that read them.
    dbs = [m._die_busy for m in members]
    cbs = [m._chan_busy for m in members]
    hors = [m._state_horizon for m in members]
    bufs = [m._buffered for m in members]
    bbs = [m._buffered_bytes for m in members]
    caps = [m._buffer_capacity for m in members]
    bw_us = [m.geometry.buffer_write_us for m in members]
    bw4 = [m.channel.bandwidth_mb_s * 4 for m in members]
    clock = 0.0
    qd = queue_depth
    for i in range(n):
        if len(in_flight) >= qd:
            while in_flight and in_flight[0] <= clock:
                heappop(in_flight)
            if len(in_flight) >= qd:
                clock = heappop(in_flight)
                clock_bumps.append((i, clock))
        ack = clock + t_cdel_l[i]
        finish = ack
        for k in range(offsets[i], offsets[i + 1]):
            mi, e = frags[k]
            db = dbs[mi]
            cb = cbs[mi]
            if e.is_read:
                if ack >= hors[mi] or _entry_idle_sparse(db, cb, e, ack):
                    _entry_commit(db, cb, e, ack)
                    h = ack + e.horizon
                    if h > hors[mi]:
                        hors[mi] = h
                    f = ack + e.svc
                else:
                    f = members[mi]._busy_read(e, ack)
                    if f > hors[mi]:
                        hors[mi] = f
            elif e.buffered:
                nbytes = e.nbytes
                buf = bufs[mi]
                bb = bbs[mi]
                while buf and buf[0][0] <= ack:
                    __, freed = buf.popleft()
                    bb -= freed
                if bb + nbytes <= caps[mi] and (
                    ack >= hors[mi] or _entry_idle_sparse(db, cb, e, ack)
                ):
                    buf.append((ack + e.drain_rel, nbytes))
                    bbs[mi] = bb + nbytes
                    _entry_commit(db, cb, e, ack)
                    h = ack + e.horizon
                    if h > hors[mi]:
                        hors[mi] = h
                    f = ack + e.svc
                else:
                    ssd = members[mi]
                    ssd._buffered_bytes = bb
                    start = ssd._buffer_admit(nbytes, ack)
                    ack_done = start + bw_us[mi] + nbytes / bw4[mi]
                    drain = ssd._busy_program(e, ack_done)
                    buf.append((drain, nbytes))
                    bbs[mi] = ssd._buffered_bytes + nbytes
                    if drain > hors[mi]:
                        hors[mi] = drain
                    f = ack_done
                    if not array_level:
                        start_overrides.append((i, start))
            else:
                if ack >= hors[mi] or _entry_idle_sparse(db, cb, e, ack):
                    _entry_commit(db, cb, e, ack)
                    h = ack + e.horizon
                    if h > hors[mi]:
                        hors[mi] = h
                    f = ack + e.svc
                else:
                    f = members[mi]._busy_program(e, ack)
                    if f > hors[mi]:
                        hors[mi] = f
            if f > finish:
                finish = f
        heappush(in_flight, finish)
        acks.append(ack)
        finishes.append(finish)
        if i < n - 1:
            clock = ack + idle_l[i]
    for m, h, bb in zip(members, hors, bbs):
        m._state_horizon = h
        m._buffered_bytes = bb
    acks_arr = np.array(acks, dtype=np.float64)
    finishes_arr = np.array(finishes, dtype=np.float64)
    # Submit column: the clock chain is ack + idle elementwise (same
    # operands the loop added), overridden where the window-full pops
    # bumped the clock.
    submits_arr = np.empty(n, dtype=np.float64)
    submits_arr[0] = 0.0
    if n > 1:
        submits_arr[1:] = acks_arr[:-1] + idle_arr[: n - 1]
    for i, bumped in clock_bumps:
        submits_arr[i] = bumped
    # Start column: the device admits at the ready time everywhere
    # except a standalone SSD's buffered-write slow path.
    starts_arr = acks_arr.copy()
    for i, start in start_overrides:
        starts_arr[i] = start
    return submits_arr, acks_arr, starts_arr, finishes_arr


#: Epoch sizing for :func:`_qdepth_epoch_events` — initial block,
#: shrink floor, growth ceiling, and how many consecutive certificate
#: failures flip the remainder of the replay to the serial plan loop.
_EPOCH_SIZE = 256
_EPOCH_MIN = 128
_EPOCH_MAX = 16384
_EPOCH_GIVEUP = 3


def _plan_serial_range(
    i0: int,
    i1: int,
    n: int,
    clock: float,
    in_flight: list[float],
    offsets,
    frags,
    members,
    array_level: bool,
    dbs,
    cbs,
    hors,
    bufs,
    bbs,
    caps,
    bw_us,
    bw4,
    t_cdel_l,
    idle_l,
    qd: int,
    acks_arr: np.ndarray,
    fins_arr: np.ndarray,
    subs_arr: np.ndarray,
    start_overrides: list[tuple[int, float]],
) -> float:
    """Serial plan-loop over requests ``[i0, i1)`` (the epoch fallback).

    The exact :func:`_qdepth_plan_events` body, writing the stamp
    columns in place and advancing the shared member state and
    in-flight heap, so an epoch whose no-bump certificate failed
    replays bit-identically to the per-event engine.  ``in_flight``
    holds exactly the live completions (finish > clock) of requests
    before ``i0`` — the per-event heap may additionally carry expired
    entries, but those never survive the full-window sweep, so the
    blocking decisions (and every stamp) are unchanged.  Returns the
    clock after request ``i1 - 1``.
    """
    heappush, heappop = heapq.heappush, heapq.heappop
    for i in range(i0, i1):
        if len(in_flight) >= qd:
            while in_flight and in_flight[0] <= clock:
                heappop(in_flight)
            if len(in_flight) >= qd:
                clock = heappop(in_flight)
        ack = clock + t_cdel_l[i]
        finish = ack
        for k in range(offsets[i], offsets[i + 1]):
            mi, e = frags[k]
            db = dbs[mi]
            cb = cbs[mi]
            if e.is_read:
                if ack >= hors[mi] or _entry_idle_sparse(db, cb, e, ack):
                    _entry_commit(db, cb, e, ack)
                    h = ack + e.horizon
                    if h > hors[mi]:
                        hors[mi] = h
                    f = ack + e.svc
                else:
                    f = members[mi]._busy_read(e, ack)
                    if f > hors[mi]:
                        hors[mi] = f
            elif e.buffered:
                nbytes = e.nbytes
                buf = bufs[mi]
                bb = bbs[mi]
                while buf and buf[0][0] <= ack:
                    __, freed = buf.popleft()
                    bb -= freed
                if bb + nbytes <= caps[mi] and (
                    ack >= hors[mi] or _entry_idle_sparse(db, cb, e, ack)
                ):
                    buf.append((ack + e.drain_rel, nbytes))
                    bbs[mi] = bb + nbytes
                    _entry_commit(db, cb, e, ack)
                    h = ack + e.horizon
                    if h > hors[mi]:
                        hors[mi] = h
                    f = ack + e.svc
                else:
                    ssd = members[mi]
                    ssd._buffered_bytes = bb
                    start = ssd._buffer_admit(nbytes, ack)
                    ack_done = start + bw_us[mi] + nbytes / bw4[mi]
                    drain = ssd._busy_program(e, ack_done)
                    buf.append((drain, nbytes))
                    bbs[mi] = ssd._buffered_bytes + nbytes
                    if drain > hors[mi]:
                        hors[mi] = drain
                    f = ack_done
                    if not array_level:
                        start_overrides.append((i, start))
            else:
                if ack >= hors[mi] or _entry_idle_sparse(db, cb, e, ack):
                    _entry_commit(db, cb, e, ack)
                    h = ack + e.horizon
                    if h > hors[mi]:
                        hors[mi] = h
                    f = ack + e.svc
                else:
                    f = members[mi]._busy_program(e, ack)
                    if f > hors[mi]:
                        hors[mi] = f
            if f > finish:
                finish = f
        heappush(in_flight, finish)
        subs_arr[i] = clock
        acks_arr[i] = ack
        fins_arr[i] = finish
        if i < n - 1:
            clock = ack + idle_l[i]
    return clock


def _epoch_member_wave(
    col,
    lo: int,
    hi: int,
    i0: int,
    req_rel: np.ndarray,
    t: np.ndarray,
    ffin: np.ndarray,
    member,
    db,
    cb,
    h0: float,
    buf,
    bb: int,
    cap: int,
    bw_u: float,
    bw4v: float,
    array_level: bool,
    start_overrides: list[tuple[int, float]],
):
    """Drain one member's fragments ``[lo, hi)`` as a wave.

    ``col`` is the member's request-sorted fragment column
    (:meth:`repro.storage.flash.FlashReplayPlan.member_columns`);
    ``req_rel``/``t``/``ffin`` are the gathered epoch-relative request
    indices, optimistic acks, and idle-case finishes the caller already
    built for its pre-wave lower-bound certificate.  The wave builds
    the ``ack + horizon`` candidate column and classifies: a fragment
    whose ack is at least the running horizon upper bound (exclusive
    prefix max of candidates, folded with the entry horizon ``h0`` and
    the finishes of any slow fragments seen so far) is provably idle —
    the probe *is* the scalar engine's decision, the horizon test only
    a shortcut for it — so its memoised stamps (and, for buffered
    writes that fit, its buffer admission) apply in a tight loop
    (:func:`repro.storage.flash._entries_apply_run`, with deferred
    buffer retirement).  Everything else (horizon violations, fragments
    whose ack falls below the latest slow-path finish, buffered writes
    that miss the buffer even after exact retirement) is walked
    serially with the exact plan-loop branches, mutating the member's
    real busy state; slow finishes overwrite ``ffin`` in place.
    Returns ``(new_horizon, new_bb, lastw)``: the member's exact
    end-of-epoch horizon and (deferred) buffer occupancy, and the ack
    of the wave's last buffer admission (``None`` when the wave had
    none) — the caller's threshold for the final retirement catch-up.
    """
    cand = t + col.hor[lo:hi]
    k = hi - lo
    recs = col.recs[lo:hi]
    busy_read = member._busy_read
    busy_program = member._busy_program
    t_l = t.tolist()
    viol = t < exclusive_running_max(cand, h0)
    viol_l = viol.tolist()
    # Static serial positions: horizon violations only.  Fragments
    # forced serial dynamically (ack below the latest slow-path finish,
    # tracked by ``hx_end``; buffered writes that overflow) are picked
    # up position by position inside the walk.
    stat_l = np.nonzero(viol)[0].tolist()
    # Slow-path finishes are batched into one fancy-index store at the
    # end of the wave (positions are visited at most once, so the
    # batched store writes exactly what the in-loop stores would).
    fin_i: list[int] = []
    fin_v: list[float] = []
    h_extra = 0.0
    hx_end = 0
    si = 0
    ns = len(stat_l)
    p = 0
    while p < k:
        while si < ns and stat_l[si] < p:
            si += 1
        s = stat_l[si] if si < ns else k
        if p < hx_end:
            s = p
        elif p < s:
            # Gap: ack ≥ every horizon bound ⇒ the idle probe must
            # pass ⇒ the scalar engine would apply exactly this.  The
            # run stops early only at a buffered write that misses the
            # buffer after exact retirement — handled serially below.
            q, bb = _entries_apply_run(db, cb, recs, t_l, p, s, buf, bb, cap)
            p = q
            if q < s:
                s = q
        if s == k:
            break
        tq = t_l[s]
        r = recs[s]
        kind = r[0]
        if kind == 0:
            # The epoch shortcut (``tq >= h_extra and not viol``) is
            # provably never true here — a static serial position has
            # ``viol`` set and a dynamically forced one has
            # ``tq < h_extra`` by the ``hx_end`` invariant — so reads
            # go straight to the fused probe-commit-or-walk closure.
            tf = r[6]
            if tf is not None:
                f = tf(db, cb, tq)
                if f:
                    fin_i.append(s)
                    fin_v.append(f)
                    if f > h_extra:
                        h_extra = f
                        while hx_end < k and t_l[hx_end] < h_extra:
                            hx_end += 1
            elif r[1](db, cb, tq):
                r[2](db, cb, tq)
            else:
                bf = r[5]
                f = bf(db, cb, tq) if bf is not None else busy_read(r[4], tq)
                fin_i.append(s)
                fin_v.append(f)
                if f > h_extra:
                    h_extra = f
                    while hx_end < k and t_l[hx_end] < h_extra:
                        hx_end += 1
        elif kind == 1:
            nbytes, dr = r[3]
            if bb + nbytes > cap:
                while buf and buf[0][0] <= tq:
                    __, freed = buf.popleft()
                    bb -= freed
            if bb + nbytes <= cap and (
                (tq >= h_extra and not viol_l[s]) or r[1](db, cb, tq)
            ):
                buf.append((tq + dr, nbytes))
                bb += nbytes
                r[2](db, cb, tq)
            else:
                # Slow admission needs the exact occupancy: catch up
                # any still-deferred retirements first (no-op when the
                # overflow branch above already ran).
                while buf and buf[0][0] <= tq:
                    __, freed = buf.popleft()
                    bb -= freed
                member._buffered_bytes = bb
                start = member._buffer_admit(nbytes, tq)
                ack_done = start + bw_u + nbytes / bw4v
                bf = r[5]
                drain = (
                    bf(db, cb, ack_done)
                    if bf is not None
                    else busy_program(r[4], ack_done)
                )
                buf.append((drain, nbytes))
                bb = member._buffered_bytes + nbytes
                fin_i.append(s)
                fin_v.append(ack_done)
                if drain > h_extra:
                    h_extra = drain
                    while hx_end < k and t_l[hx_end] < h_extra:
                        hx_end += 1
                if not array_level:
                    start_overrides.append((i0 + int(req_rel[s]), start))
        else:
            tf = r[6]
            if tf is not None:
                f = tf(db, cb, tq)
                if f:
                    fin_i.append(s)
                    fin_v.append(f)
                    if f > h_extra:
                        h_extra = f
                        while hx_end < k and t_l[hx_end] < h_extra:
                            hx_end += 1
            elif r[1](db, cb, tq):
                r[2](db, cb, tq)
            else:
                bf = r[5]
                f = bf(db, cb, tq) if bf is not None else busy_program(r[4], tq)
                fin_i.append(s)
                fin_v.append(f)
                if f > h_extra:
                    h_extra = f
                    while hx_end < k and t_l[hx_end] < h_extra:
                        hx_end += 1
        p = s + 1
    if fin_i:
        ffin[fin_i] = fin_v
    # Exact end-of-epoch horizon: fast paths fold their candidates,
    # slow paths their finishes (each slow candidate is bounded by its
    # finish, so folding all candidates is exact, not just an upper
    # bound).
    new_h = max(h0, float(cand.max()), h_extra)
    wb = col.wbuf
    j = int(np.searchsorted(wb, hi)) - 1
    lastw = t_l[int(wb[j]) - lo] if j >= 0 and wb[j] >= lo else None
    return new_h, bb, lastw


def _no_bump_ok(
    live_carry: list[float],
    clock: float,
    subs_arr: np.ndarray,
    fins_ep: np.ndarray,
    i0: int,
    i1: int,
    qd: int,
) -> bool:
    """No-bump certificate for epoch ``[i0, i1)`` against local finishes.

    Carried live completions first (pseudo pairs: each of the at most
    ``qd`` live finishes, ordered ascending, must clear the submit
    ``qd`` slots after its pseudo-position just before the epoch), then
    the in-epoch pairs — request ``j`` must finish by submit ``j + qd``
    — as one vector comparison.  ``fins_ep`` is the epoch-local finish
    column (length ``i1 - i0``); passing the idle-case lower bound
    ``ack + svc`` instead of true finishes turns the certificate into a
    cheap pre-wave necessary condition.
    """
    live = sorted(v for v in live_carry if v > clock)
    for m, v in enumerate(live):
        pos = i0 - len(live) + m + qd
        if pos >= i1:
            break
        if v > subs_arr[pos]:
            return False
    if i1 - qd > i0 and bool(np.any(fins_ep[: i1 - qd - i0] > subs_arr[i0 + qd : i1])):
        return False
    return True


def _qdepth_epoch_events(
    device: StorageDevice,
    plan,
    t_cdel: np.ndarray,
    idle_arr: np.ndarray,
    queue_depth: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Epoch-batched replay over a device plan (flash / flash array).

    Optimistically assumes the submission window never fills for a
    block of requests (the *epoch*): the submit/ack clock chain is then
    a pure two-add serial recurrence (:func:`repro.replay.fastpath.ack_chain`)
    with no heap, and each member's fragments drain as a
    structure-of-arrays wave (:func:`_epoch_member_wave`).  The
    assumption is validated exactly afterwards — request ``j`` must
    finish by submit ``j + qd`` for every in-epoch pair, and each
    completion carried live across the epoch boundary must clear the
    submit ``qd`` slots after its pseudo-position just before the epoch
    (there are at most ``qd`` of them, ordered ascending; together the
    pairs bound the in-flight count below ``qd`` at every request).
    On violation the member state rolls back to the epoch snapshot and
    the epoch replays through :func:`_plan_serial_range`, halving the
    epoch size; repeated failures hand the whole remainder to the
    serial loop.  Stamps are bit-identical to
    :func:`_qdepth_plan_events` in every case.
    """
    offsets = plan.offsets
    frags = plan.frags
    array_level = plan.array_level
    members = plan.members_of(device)
    cols = plan.member_columns()
    n = len(offsets) - 1
    qd = queue_depth
    dbs = [m._die_busy for m in members]
    cbs = [m._chan_busy for m in members]
    hors = [m._state_horizon for m in members]
    bufs = [m._buffered for m in members]
    bbs = [m._buffered_bytes for m in members]
    caps = [m._buffer_capacity for m in members]
    bw_us = [m.geometry.buffer_write_us for m in members]
    bw4 = [m.channel.bandwidth_mb_s * 4 for m in members]
    t_cdel_l = t_cdel.tolist()
    idle_l = idle_arr.tolist()
    acks_arr = np.empty(n, dtype=np.float64)
    fins_arr = np.empty(n, dtype=np.float64)
    subs_arr = np.empty(n, dtype=np.float64)
    start_overrides: list[tuple[int, float]] = []
    live_carry: list[float] = []
    mlos = [0] * len(cols)
    lastws = [float("-inf")] * len(cols)
    nm = len(cols)
    clock = 0.0
    i0 = 0
    epoch = _EPOCH_SIZE
    fail_streak = 0
    precheck = False
    while i0 < n:
        i1 = min(n, i0 + epoch)
        clock_end = ack_chain(t_cdel, idle_arr, clock, i0, i1, n, acks_arr)
        subs_arr[i0] = clock
        if i1 - i0 > 1:
            np.add(acks_arr[i0 : i1 - 1], idle_arr[i0 : i1 - 1], out=subs_arr[i0 + 1 : i1])
        acks_ep = acks_arr[i0:i1]
        # Gather each member's fragment columns for the epoch and —
        # only while recovering from a recent certificate failure —
        # fold the idle-case finishes (``ack + svc``, a lower bound on
        # the true finishes) into a pre-wave certificate: if even the
        # lower bound bumps the window, skip the optimistic waves
        # entirely — no member state is touched, so there is nothing to
        # roll back.  On a success streak the precheck is pure overhead
        # (the real certificate below passes anyway), so it stays off
        # until a failure re-arms it.
        if precheck:
            fins_ep = acks_ep.copy()
        pre: list[tuple[int, np.ndarray, np.ndarray, np.ndarray] | None] = [None] * nm
        for mi in range(nm):
            col = cols[mi]
            if col is None:
                continue
            lo = mlos[mi]
            hi = int(np.searchsorted(col.req, i1))
            if hi == lo:
                continue
            req_rel = col.req[lo:hi] - i0
            t = acks_ep[req_rel]
            ffin = t + col.svc[lo:hi]
            if precheck:
                np.maximum.at(fins_ep, req_rel, ffin)
            pre[mi] = (hi, req_rel, t, ffin)
        ok = not precheck or _no_bump_ok(live_carry, clock, subs_arr, fins_ep, i0, i1, qd)
        if ok:
            snap = [
                (list(db), list(cb), h, tuple(buf), bb)
                for db, cb, h, buf, bb in zip(dbs, cbs, hors, bufs, bbs)
            ]
            snap_mlos = list(mlos)
            snap_lastws = list(lastws)
            snap_overrides = len(start_overrides)
            fins_ep = acks_ep.copy()
            for mi in range(nm):
                gathered = pre[mi]
                if gathered is None:
                    continue
                hi, req_rel, t, ffin = gathered
                new_h, new_bb, lastw = _epoch_member_wave(
                    cols[mi],
                    mlos[mi],
                    hi,
                    i0,
                    req_rel,
                    t,
                    ffin,
                    members[mi],
                    dbs[mi],
                    cbs[mi],
                    hors[mi],
                    bufs[mi],
                    bbs[mi],
                    caps[mi],
                    bw_us[mi],
                    bw4[mi],
                    array_level,
                    start_overrides,
                )
                mlos[mi] = hi
                hors[mi] = new_h
                bbs[mi] = new_bb
                if lastw is not None:
                    lastws[mi] = lastw
                np.maximum.at(fins_ep, req_rel, ffin)
            fins_arr[i0:i1] = fins_ep
            # Real certificate against the true finishes (slow paths
            # may have pushed them past the lower bound).
            ok = _no_bump_ok(live_carry, clock, subs_arr, fins_ep, i0, i1, qd)
            if ok:
                clock = clock_end
                lo_t = max(i0, i1 - qd)
                tail = fins_arr[lo_t:i1]
                live_carry = [v for v in live_carry if v > clock]
                live_carry.extend(tail[tail > clock].tolist())
                i0 = i1
                fail_streak = 0
                precheck = False
                if epoch < _EPOCH_MAX:
                    epoch = min(_EPOCH_MAX, epoch * 4)
                continue
            # Certificate failed after the waves ran: a window bump is
            # possible somewhere in the epoch.  Roll every member back
            # to the epoch snapshot before the serial replay below.
            for mi, (db_s, cb_s, h_s, buf_s, bb_s) in enumerate(snap):
                dbs[mi][:] = db_s
                cbs[mi][:] = cb_s
                hors[mi] = h_s
                buf = bufs[mi]
                buf.clear()
                buf.extend(buf_s)
                bbs[mi] = bb_s
            mlos = snap_mlos
            lastws = snap_lastws
            del start_overrides[snap_overrides:]
        prior = fins_arr[:i0]
        in_flight = prior[prior > clock].tolist()
        heapq.heapify(in_flight)
        fail_streak += 1
        precheck = True
        epoch = max(_EPOCH_MIN, epoch // 2)
        i1_serial = n if fail_streak >= _EPOCH_GIVEUP else i1
        clock = _plan_serial_range(
            i0,
            i1_serial,
            n,
            clock,
            in_flight,
            offsets,
            frags,
            members,
            array_level,
            dbs,
            cbs,
            hors,
            bufs,
            bbs,
            caps,
            bw_us,
            bw4,
            t_cdel_l,
            idle_l,
            qd,
            acks_arr,
            fins_arr,
            subs_arr,
            start_overrides,
        )
        i0 = i1_serial
        if i0 < n:
            for mi in range(nm):
                col = cols[mi]
                if col is not None:
                    mlos[mi] = int(np.searchsorted(col.req, i0))
            prior = fins_arr[:i0]
            live_carry = prior[prior > clock].tolist()
    # Final deferred-retirement catch-up: pop exactly what the serial
    # engine's per-write retirement would have popped by its last
    # buffer admission.  The admission itself sits at the deque's back
    # and is never popped — the serial loop retires before appending.
    for m, buf, lw, h, bb in zip(members, bufs, lastws, hors, bbs):
        while len(buf) > 1 and buf[0][0] <= lw:
            __, freed = buf.popleft()
            bb -= freed
        m._state_horizon = h
        m._buffered_bytes = bb
    starts_arr = acks_arr.copy()
    for i, start in start_overrides:
        starts_arr[i] = start
    return subs_arr, acks_arr, starts_arr, fins_arr


def replay_queue_depth_scalar(
    old_trace: BlockTrace,
    device: StorageDevice,
    idle_us: np.ndarray | None = None,
    queue_depth: int = 4,
    method: str = "qdepth-replay",
) -> ReplayResult:
    """Reference queue-depth replay (the bit-identity oracle).

    The original request-at-a-time loop over ``device.submit`` with a
    list-filtered in-flight window.  Kept verbatim as the readable
    specification; the property suite asserts
    :func:`replay_queue_depth` reproduces its stamps bit-for-bit.
    """
    n = len(old_trace)
    if n == 0:
        raise ValueError("cannot replay an empty trace")
    if queue_depth < 1:
        raise ValueError("queue depth must be at least 1")
    idle_arr = _validated_idle(n, idle_us)
    device.reset()
    collector = TraceCollector(
        name=old_trace.name,
        metadata=_qdepth_metadata(old_trace, device, method, queue_depth),
    )
    completions = []
    in_flight_finish: list[float] = []  # finish times of outstanding requests
    clock = 0.0
    for i in range(n):
        # Free slots that completed by now; if the window is full, wait
        # for the oldest outstanding completion.
        in_flight_finish = [f for f in in_flight_finish if f > clock]
        if len(in_flight_finish) >= queue_depth:
            in_flight_finish.sort()
            clock = in_flight_finish[0]
            in_flight_finish = in_flight_finish[1:]
        if queue_depth == 1 and completions:
            # Degenerate synchronous mode: think runs from completion.
            clock = max(clock, completions[-1].finish)
        completion = device.submit(
            OpType(int(old_trace.ops[i])),
            int(old_trace.lbas[i]),
            int(old_trace.sizes[i]),
            clock,
        )
        completions.append(completion)
        in_flight_finish.append(completion.finish)
        collector.observe(
            submit=clock,
            lba=int(old_trace.lbas[i]),
            size=int(old_trace.sizes[i]),
            op=int(old_trace.ops[i]),
            completion=completion,
        )
        if i < n - 1:
            # Host is occupied for the channel hand-off, then thinks.
            clock = completion.ack + float(idle_arr[i])
    return ReplayResult(
        trace=collector.build(),
        device_name=device.name,
        submits=np.array([c.submit for c in completions]),
        acks=np.array([c.ack for c in completions]),
        starts=np.array([c.start for c in completions]),
        finishes=np.array([c.finish for c in completions]),
        completions=tuple(completions),
    )
