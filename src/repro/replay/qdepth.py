"""Queue-depth replay: asynchronous replay with bounded outstanding I/O.

The paper's emulation issues synchronously and repairs asynchrony in
post-processing.  An alternative (and the natural extension once the
sync flags are *known*, as they are for synthetic traces) is to replay
with a bounded submission window, the way ``fio`` drives a device at
``iodepth > 1``: up to ``queue_depth`` requests may be in flight; a new
request is submitted as soon as a slot frees *and* its think time has
elapsed.

Built on the discrete-event engine so completions and submissions
interleave correctly.  Used by tests and available to studies that want
target-load sensitivity (e.g. how reconstruction fidelity changes when
the replayer is allowed genuine overlap).
"""

from __future__ import annotations

import numpy as np

from ..storage.device import StorageDevice
from ..trace.record import OpType
from ..trace.trace import BlockTrace
from .collector import TraceCollector
from .replayer import ReplayResult

__all__ = ["replay_queue_depth"]


def replay_queue_depth(
    old_trace: BlockTrace,
    device: StorageDevice,
    idle_us: np.ndarray | None = None,
    queue_depth: int = 4,
    method: str = "qdepth-replay",
) -> ReplayResult:
    """Replay with up to ``queue_depth`` requests in flight.

    Submission rule: request ``i + 1`` becomes *ready* ``idle_us[i]``
    after request ``i`` was submitted (think time runs from submission,
    not completion — the asynchronous interpretation), and is submitted
    at ``max(ready, slot_free)`` where ``slot_free`` is when the oldest
    in-flight request completes, window-style.

    With ``queue_depth=1`` this degenerates to the synchronous replay of
    :func:`repro.replay.replayer.replay_with_idle` (think measured from
    completion).

    Returns the same :class:`ReplayResult` shape as the synchronous
    replayer.
    """
    n = len(old_trace)
    if n == 0:
        raise ValueError("cannot replay an empty trace")
    if queue_depth < 1:
        raise ValueError("queue depth must be at least 1")
    if idle_us is not None:
        idle_arr = np.asarray(idle_us, dtype=np.float64)
        if len(idle_arr) not in (n - 1, n):
            raise ValueError(f"idle array must have length {n - 1} (or {n}), got {len(idle_arr)}")
        if np.any(idle_arr < 0):
            raise ValueError("idle periods must be non-negative")
    else:
        idle_arr = np.zeros(max(0, n - 1), dtype=np.float64)
    device.reset()
    collector = TraceCollector(
        name=old_trace.name,
        metadata={
            **old_trace.metadata,
            "method": method,
            "replayed_on": device.name,
            "queue_depth": queue_depth,
        },
    )
    completions = []
    in_flight_finish: list[float] = []  # finish times of outstanding requests
    clock = 0.0
    for i in range(n):
        # Free slots that completed by now; if the window is full, wait
        # for the oldest outstanding completion.
        in_flight_finish = [f for f in in_flight_finish if f > clock]
        if len(in_flight_finish) >= queue_depth:
            in_flight_finish.sort()
            clock = in_flight_finish[0]
            in_flight_finish = in_flight_finish[1:]
        if queue_depth == 1 and completions:
            # Degenerate synchronous mode: think runs from completion.
            clock = max(clock, completions[-1].finish)
        completion = device.submit(
            OpType(int(old_trace.ops[i])),
            int(old_trace.lbas[i]),
            int(old_trace.sizes[i]),
            clock,
        )
        completions.append(completion)
        in_flight_finish.append(completion.finish)
        collector.observe(
            submit=clock,
            lba=int(old_trace.lbas[i]),
            size=int(old_trace.sizes[i]),
            op=int(old_trace.ops[i]),
            completion=completion,
        )
        if i < n - 1:
            # Host is occupied for the channel hand-off, then thinks.
            clock = completion.ack + float(idle_arr[i])
    return ReplayResult(
        trace=collector.build(),
        device_name=device.name,
        submits=np.array([c.submit for c in completions]),
        acks=np.array([c.ack for c in completions]),
        starts=np.array([c.start for c in completions]),
        finishes=np.array([c.finish for c in completions]),
        completions=tuple(completions),
    )
