#!/usr/bin/env python
"""Build the API reference and lint the documentation tree.

Two jobs, both runnable locally and in CI:

- **API reference generation** (``--out docs/api``): walk every module
  of the ``repro`` package and emit one markdown page per module
  (module docstring, public classes with their public methods, public
  functions, all with signatures) plus an ``index.md``.  When `pdoc
  <https://pdoc.dev>`_ is importable and ``--pdoc`` is given, pdoc's
  HTML output is produced instead; the built-in generator keeps the
  docs buildable in environments without it (the reference markdown in
  the repository comes from the built-in generator, so diffs review
  well).

- **Lint** (always): a missing module docstring, or a missing
  docstring on any public class/function/method defined in the
  package, is a warning; ``--strict`` turns warnings into a non-zero
  exit.  ``--check-links`` additionally verifies that every relative
  markdown link in ``README.md`` and ``docs/**/*.md`` points at a file
  that exists.

Usage::

    PYTHONPATH=src python docs/build_docs.py --strict --check-links
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pkgutil
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUT = REPO_ROOT / "docs" / "api"

#: Markdown files whose relative links --check-links verifies.
LINKED_DOCS = ("README.md", "docs")


# ----------------------------------------------------------------------
# Introspection
# ----------------------------------------------------------------------


def iter_module_names(package_name: str = "repro") -> list[str]:
    """Every module in the package, sorted, including the root."""
    package = importlib.import_module(package_name)
    names = [package_name]
    for info in pkgutil.walk_packages(package.__path__, prefix=f"{package_name}."):
        names.append(info.name)
    return sorted(names)


def public_members(module) -> list[tuple[str, object]]:
    """Public top-level classes and functions defined *by* this module."""
    out = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        out.append((name, obj))
    return out


def public_methods(cls) -> list[tuple[str, object]]:
    """Public methods/properties defined directly on ``cls``."""
    out = []
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            out.append((name, member))
        elif inspect.isfunction(member):
            out.append((name, member))
        elif isinstance(member, (classmethod, staticmethod)):
            out.append((name, member.__func__))
    return out


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _first_paragraph(doc: str) -> str:
    return doc.split("\n\n", 1)[0].strip()


def audit_module(module) -> list[str]:
    """Docstring warnings for one module (empty = clean)."""
    warnings = []
    if not inspect.getdoc(module):
        warnings.append(f"{module.__name__}: missing module docstring")
    for name, obj in public_members(module):
        if not inspect.getdoc(obj):
            warnings.append(f"{module.__name__}.{name}: missing docstring")
        if inspect.isclass(obj):
            for mname, member in public_methods(obj):
                target = member.fget if isinstance(member, property) else member
                if not inspect.getdoc(target):
                    warnings.append(
                        f"{module.__name__}.{name}.{mname}: missing docstring"
                    )
    return warnings


# ----------------------------------------------------------------------
# Markdown rendering
# ----------------------------------------------------------------------


def render_module(module) -> str:
    """One module's API reference page as markdown."""
    lines = [f"# `{module.__name__}`", ""]
    doc = inspect.getdoc(module)
    if doc:
        lines += [doc, ""]
    classes = [(n, o) for n, o in public_members(module) if inspect.isclass(o)]
    functions = [(n, o) for n, o in public_members(module) if inspect.isfunction(o)]
    for name, cls in sorted(classes):
        lines += [f"## class `{name}`", ""]
        cls_doc = inspect.getdoc(cls)
        if cls_doc:
            lines += [cls_doc, ""]
        for mname, member in sorted(public_methods(cls)):
            if isinstance(member, property):
                lines += [f"### property `{name}.{mname}`", ""]
                mdoc = inspect.getdoc(member.fget) if member.fget else None
            else:
                lines += [f"### `{name}.{mname}{_signature(member)}`", ""]
                mdoc = inspect.getdoc(member)
            if mdoc:
                lines += [_first_paragraph(mdoc), ""]
    for name, fn in sorted(functions):
        lines += [f"## `{name}{_signature(fn)}`", ""]
        fn_doc = inspect.getdoc(fn)
        if fn_doc:
            lines += [fn_doc, ""]
    return "\n".join(lines).rstrip() + "\n"


def build_api(out_dir: Path, module_names: list[str]) -> list[str]:
    """Write one markdown page per module plus an index; returns warnings."""
    out_dir.mkdir(parents=True, exist_ok=True)
    warnings: list[str] = []
    index = ["# API reference", "", "Generated by `docs/build_docs.py`; do not edit by hand.", ""]
    for name in module_names:
        module = importlib.import_module(name)
        warnings.extend(audit_module(module))
        page = f"{name}.md"
        (out_dir / page).write_text(render_module(module), encoding="utf-8")
        doc = inspect.getdoc(module)
        hook = _first_paragraph(doc).splitlines()[0] if doc else ""
        index.append(f"- [`{name}`]({page}) — {hook}")
    (out_dir / "index.md").write_text("\n".join(index) + "\n", encoding="utf-8")
    return warnings


def build_api_pdoc(out_dir: Path) -> None:
    """HTML reference via pdoc (only when pdoc is importable)."""
    import pdoc  # noqa: F401  (gated optional dependency)
    import pdoc.web  # noqa: F401

    from pdoc import pdoc as run_pdoc

    run_pdoc("repro", output_directory=out_dir)


# ----------------------------------------------------------------------
# Link checking
# ----------------------------------------------------------------------

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_links(root: Path) -> list[str]:
    """Dead relative links in README.md and docs/**/*.md."""
    warnings = []
    files = [root / "README.md"] if (root / "README.md").exists() else []
    docs_dir = root / "docs"
    if docs_dir.exists():
        files.extend(sorted(docs_dir.rglob("*.md")))
    for path in files:
        text = path.read_text(encoding="utf-8")
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                warnings.append(
                    f"{path.relative_to(root)}: dead link -> {target}"
                )
    return warnings


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    """Build the reference, run the lint, report warnings."""
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n", 1)[0])
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="API output directory")
    parser.add_argument("--strict", action="store_true", help="exit non-zero on any warning")
    parser.add_argument("--check-links", action="store_true", help="verify relative markdown links")
    parser.add_argument(
        "--pdoc", action="store_true",
        help="use pdoc (HTML) instead of the built-in markdown generator",
    )
    args = parser.parse_args(argv)

    if args.pdoc:
        try:
            build_api_pdoc(args.out)
            warnings: list[str] = []
        except ImportError:
            print("pdoc is not installed; falling back to the built-in generator", file=sys.stderr)
            warnings = build_api(args.out, iter_module_names())
    else:
        warnings = build_api(args.out, iter_module_names())
    if args.check_links:
        warnings.extend(check_links(REPO_ROOT))

    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    print(f"docs built into {args.out} ({len(warnings)} warning(s))")
    if warnings and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
